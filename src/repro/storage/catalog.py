"""The catalog: a registry of tables and indexes.

The optimizer consults the catalog for statistics, clustering orders and
covering indexes; the executor consults it for rows.  A catalog also
carries system-wide physical parameters (block size, sort memory) so a
whole experiment is reproducible from one object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from ..core.sort_order import SortOrder
from .schema import FunctionalDependency, Schema
from .statistics import DEFAULT_BLOCK_SIZE, TableStats
from .table import Index, RangePartitioning, Table


@dataclass
class SystemParameters:
    """Physical parameters of the simulated system.

    Defaults follow the paper's running example: 4 KB blocks and
    10,000 blocks (40 MB) of sort memory.  ``cpu_comparisons_per_io``
    translates CPU comparison cost into I/O cost units (the paper states
    "CPU cost is appropriately translated into I/O cost units" without
    publishing the constant; see DESIGN.md §6).
    """

    block_size: int = DEFAULT_BLOCK_SIZE
    sort_memory_blocks: int = 10_000
    cpu_comparisons_per_io: float = 200_000.0
    hash_build_rows_per_io: float = 400_000.0

    @property
    def sort_memory_bytes(self) -> int:
        return self.block_size * self.sort_memory_blocks


class Catalog:
    """Mutable registry of tables and their indexes."""

    def __init__(self, params: Optional[SystemParameters] = None) -> None:
        self._tables: dict[str, Table] = {}
        self._indexes: dict[str, Index] = {}
        self._by_table: dict[str, list[Index]] = {}
        self.params = params or SystemParameters()
        #: Bumped on every registration (tables/indexes) — part of the
        #: catalog-wide statistics version below.
        self._registry_version = 0
        #: Per-table registration bumps (index additions): part of each
        #: table's :meth:`table_version`, so plans referencing the table
        #: are invalidated without evicting plans over other tables.
        self._table_registry: dict[str, int] = {}

    # -- statistics versioning ---------------------------------------------------------
    @property
    def stats_version(self) -> int:
        """Monotonic version of everything a plan depends on: registered
        tables/indexes plus each table's statistics version.  Plan caches
        compare this to decide whether a cached plan is still valid."""
        return self._registry_version + sum(
            t.stats_version for t in self._tables.values())

    def refresh_stats(self, table_name: str,
                      stats: Optional["TableStats"] = None) -> "TableStats":
        """Replace (or re-measure) one table's statistics, bumping the
        catalog :attr:`stats_version` so cached plans are invalidated."""
        return self.table(table_name).update_stats(stats)

    def table_version(self, table_name: str) -> int:
        """Monotonic version of everything a plan depends on *for one
        table*: its statistics version plus its index registrations."""
        return (self.table(table_name).stats_version
                + self._table_registry.get(table_name, 0))

    def table_versions(self, table_names: Iterable[str]
                       ) -> tuple[tuple[str, int], ...]:
        """Canonical version token for a set of referenced tables.

        The serving layer keys cached plans on this token so that
        ``refresh_stats("orders")`` invalidates only plans that actually
        read ``orders`` (per-table invalidation granularity).
        """
        return tuple(sorted((name, self.table_version(name))
                            for name in set(table_names)))

    # -- registration ----------------------------------------------------------------
    def add_table(self, table: Table) -> Table:
        if table.name in self._tables:
            raise ValueError(f"table {table.name!r} already registered")
        self._tables[table.name] = table
        self._by_table.setdefault(table.name, [])
        self._table_registry.setdefault(table.name, 0)
        self._registry_version += 1
        return table

    def create_table(
        self,
        name: str,
        schema: Schema,
        rows: Optional[list[tuple]] = None,
        clustering_order: SortOrder = SortOrder(),
        stats: Optional[TableStats] = None,
        primary_key: Optional[Iterable[str]] = None,
        partitioning: Optional["RangePartitioning"] = None,
    ) -> Table:
        return self.add_table(
            Table(name, schema, rows, clustering_order, stats,
                  tuple(primary_key) if primary_key else None,
                  partitioning=partitioning)
        )

    def add_index(self, index: Index) -> Index:
        if index.name in self._indexes:
            raise ValueError(f"index {index.name!r} already registered")
        if index.table.name not in self._tables:
            raise ValueError(f"index {index.name!r} references unregistered table")
        self._indexes[index.name] = index
        self._by_table[index.table.name].append(index)
        self._table_registry[index.table.name] = \
            self._table_registry.get(index.table.name, 0) + 1
        self._registry_version += 1
        return index

    def create_index(self, name: str, table_name: str, key: SortOrder,
                     included: Iterable[str] = ()) -> Index:
        return self.add_index(Index(name, self.table(table_name), key, tuple(included)))

    def alias_table(self, source_name: str, alias: str, prefix: str) -> Table:
        """Register a renamed view of an existing table (for self-joins).

        Column names gain *prefix*; rows are shared with the source (no
        copy), statistics and clustering carry over.  Indexes are not
        aliased automatically — recreate the ones the query needs.
        """
        src = self.table(source_name)
        mapping = {c.name: f"{prefix}{c.name}" for c in src.schema}
        schema = src.schema.rename(mapping)
        clustering = src.clustering_order.translate(mapping)
        stats = TableStats(
            num_rows=src.stats.num_rows,
            distinct={mapping[c]: d for c, d in src.stats.distinct.items()},
            group_distinct={frozenset(mapping[c] for c in g): d
                            for g, d in src.stats.group_distinct.items()},
            sketches={mapping[c]: s for c, s in src.stats.sketches.items()},
        )
        rows = src._rows if src.is_materialized else None
        key = tuple(mapping[c] for c in src.primary_key) if src.primary_key else None
        table = Table(alias, schema, rows, clustering, stats, key)
        return self.add_table(table)

    # -- lookup ------------------------------------------------------------------------
    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(f"no table {name!r}; have {sorted(self._tables)}") from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def indexes_of(self, table_name: str) -> list[Index]:
        """``idx(R)``: all indexes over the table."""
        return list(self._by_table.get(table_name, []))

    def covering_indexes(self, table_name: str, attributes: Iterable[str]) -> list[Index]:
        """Indexes over *table_name* that cover the attribute set."""
        attrs = set(attributes)
        return [ix for ix in self.indexes_of(table_name) if ix.covers(attrs)]

    def tables(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def functional_dependencies(self) -> list[FunctionalDependency]:
        fds: list[FunctionalDependency] = []
        for table in self._tables.values():
            fds.extend(table.functional_dependencies())
        return fds

    def __repr__(self) -> str:  # pragma: no cover
        return f"Catalog({sorted(self._tables)}, {len(self._indexes)} indexes)"
