"""Storage substrate: schemas, tables, indexes, statistics, catalog."""

from .catalog import Catalog, SystemParameters
from .handoff import CatalogPayload, build_catalog, catalog_payload
from .schema import Column, FunctionalDependency, Schema
from .statistics import (
    DEFAULT_BLOCK_SIZE,
    DistinctSketch,
    StatsView,
    TableStats,
    blocks_for,
    measure_partitions,
    measure_shards,
)
from .table import Index, RangePartitioning, Table

__all__ = [
    "Catalog",
    "CatalogPayload",
    "Column",
    "DEFAULT_BLOCK_SIZE",
    "DistinctSketch",
    "FunctionalDependency",
    "Index",
    "RangePartitioning",
    "Schema",
    "StatsView",
    "SystemParameters",
    "Table",
    "TableStats",
    "blocks_for",
    "build_catalog",
    "catalog_payload",
    "measure_partitions",
    "measure_shards",
]
