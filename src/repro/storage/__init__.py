"""Storage substrate: schemas, tables, indexes, statistics, catalog."""

from .catalog import Catalog, SystemParameters
from .schema import Column, FunctionalDependency, Schema
from .statistics import DEFAULT_BLOCK_SIZE, StatsView, TableStats, blocks_for
from .table import Index, Table

__all__ = [
    "Catalog",
    "Column",
    "DEFAULT_BLOCK_SIZE",
    "FunctionalDependency",
    "Index",
    "Schema",
    "StatsView",
    "SystemParameters",
    "Table",
    "TableStats",
    "blocks_for",
]
