"""Base tables.

A :class:`Table` couples a schema with (optionally) materialised rows, a
clustering order and statistics.  Two flavours exist:

* **materialised** — rows are present; execution benchmarks use these;
* **stats-only** — only :class:`~repro.storage.statistics.TableStats` are
  declared.  The optimizer never looks at rows, so stats-only tables let
  us reproduce the paper's *estimated-cost* experiments (Figures 1, 2,
  15, 16) at the full published sizes (2M-row catalogs, 6M-row lineitem)
  without materialising them.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..core.sort_order import SortOrder, EMPTY_ORDER
from .schema import FunctionalDependency, Schema
from .statistics import TableStats


class Table:
    """A named base relation."""

    def __init__(
        self,
        name: str,
        schema: Schema,
        rows: Optional[list[tuple]] = None,
        clustering_order: SortOrder = EMPTY_ORDER,
        stats: Optional[TableStats] = None,
        primary_key: Optional[Sequence[str]] = None,
    ) -> None:
        if rows is None and stats is None:
            raise ValueError(f"table {name}: need rows or declared stats")
        for col in clustering_order:
            if col not in schema:
                raise ValueError(f"table {name}: clustering column {col!r} not in schema")
        self.name = name
        self.schema = schema
        self._rows = rows
        self.clustering_order = clustering_order
        self.primary_key = tuple(primary_key) if primary_key else None
        if self.primary_key:
            for col in self.primary_key:
                if col not in schema:
                    raise ValueError(f"table {name}: key column {col!r} not in schema")
        if rows is not None and clustering_order:
            self._sort_rows_by(clustering_order)
        self._stats = stats if stats is not None else TableStats.measure(self._rows or [], schema)
        #: Bumped every time the table's statistics are replaced; plan
        #: caches key on it so stale plans are invalidated (see
        #: :mod:`repro.service.plan_cache`).
        self.stats_version = 0

    # -- statistics -----------------------------------------------------------------
    @property
    def stats(self) -> TableStats:
        return self._stats

    @stats.setter
    def stats(self, new_stats: TableStats) -> None:
        self._stats = new_stats
        self.stats_version += 1

    def update_stats(self, new_stats: Optional[TableStats] = None) -> TableStats:
        """Replace the table's statistics (re-measuring from rows when no
        explicit stats are given) and bump :attr:`stats_version`."""
        if new_stats is None:
            new_stats = TableStats.measure(self._rows or [], self.schema)
        self.stats = new_stats
        return new_stats

    # -- rows ----------------------------------------------------------------------
    @property
    def is_materialized(self) -> bool:
        return self._rows is not None

    @property
    def rows(self) -> list[tuple]:
        if self._rows is None:
            raise RuntimeError(
                f"table {self.name} is stats-only (optimizer experiments); "
                "it cannot be scanned by the executor"
            )
        return self._rows

    def __len__(self) -> int:
        return self.stats.num_rows if self._rows is None else len(self._rows)

    def _sort_rows_by(self, order: SortOrder) -> None:
        positions = self.schema.positions(list(order))
        self._rows.sort(key=lambda row: tuple(row[i] for i in positions))

    # -- physical properties ---------------------------------------------------------
    @property
    def num_blocks(self) -> int:
        from .statistics import blocks_for
        return blocks_for(len(self), self.schema.row_bytes)

    def functional_dependencies(self) -> list[FunctionalDependency]:
        """FDs induced by the primary key, if declared."""
        if not self.primary_key:
            return []
        return [FunctionalDependency.key(self.primary_key, self.schema.names)]

    def verify_clustering(self) -> bool:
        """Check that materialised rows honour the clustering order."""
        if self._rows is None or not self.clustering_order:
            return True
        positions = self.schema.positions(list(self.clustering_order))
        prev = None
        for row in self._rows:
            key = tuple(row[i] for i in positions)
            if prev is not None and key < prev:
                return False
            prev = key
        return True

    def __repr__(self) -> str:
        kind = "materialized" if self.is_materialized else "stats-only"
        return (f"Table({self.name}, {len(self)} rows, {kind}, "
                f"clustered on {self.clustering_order})")


class Index:
    """A secondary index over a table.

    ``key`` is the index sort order; ``included`` lists extra columns
    stored in the leaves.  An index *covers* a set of attributes when
    key ∪ included ⊇ attributes — the paper's query-covering indices
    ("secondary indices that cover a query make it very efficient to
    obtain desired sort orders without accessing the data pages").
    """

    def __init__(self, name: str, table: Table, key: SortOrder,
                 included: Sequence[str] = ()) -> None:
        for col in list(key) + list(included):
            if col not in table.schema:
                raise ValueError(f"index {name}: column {col!r} not in {table.name}")
        overlap = set(included) & key.attrs()
        if overlap:
            raise ValueError(f"index {name}: included columns {overlap} duplicate key columns")
        self.name = name
        self.table = table
        self.key = key
        self.included = tuple(included)

    @property
    def columns(self) -> tuple[str, ...]:
        """All columns available from the index leaves, key first."""
        return self.key.as_tuple + self.included

    def covers(self, attributes: Iterable[str]) -> bool:
        return set(attributes) <= set(self.columns)

    def entry_bytes(self) -> int:
        """Average leaf-entry width: the covered columns plus a row pointer."""
        schema = self.table.schema
        width = sum(schema[c].avg_size for c in self.columns)
        return width + 8  # 8-byte TID

    @property
    def leaf_schema(self) -> Schema:
        return self.table.schema.project(list(self.columns))

    def scan_rows(self) -> list[tuple]:
        """Leaf entries (covered columns only), in index-key order."""
        schema = self.table.schema
        proj = schema.positions(list(self.columns))
        key_positions = schema.positions(list(self.key))
        rows = [tuple(r[i] for i in proj) for r in self.table.rows]
        key_width = len(key_positions)
        rows.sort(key=lambda row: row[:key_width])
        return rows

    def __repr__(self) -> str:
        inc = f" include {list(self.included)}" if self.included else ""
        return f"Index({self.name} on {self.table.name} {self.key}{inc})"
