"""Base tables.

A :class:`Table` couples a schema with (optionally) materialised rows, a
clustering order and statistics.  Two flavours exist:

* **materialised** — rows are present; execution benchmarks use these;
* **stats-only** — only :class:`~repro.storage.statistics.TableStats` are
  declared.  The optimizer never looks at rows, so stats-only tables let
  us reproduce the paper's *estimated-cost* experiments (Figures 1, 2,
  15, 16) at the full published sizes (2M-row catalogs, 6M-row lineitem)
  without materialising them.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ..core.sort_order import SortOrder, EMPTY_ORDER
from .schema import FunctionalDependency, Schema
from .statistics import TableStats, measure_partitions, measure_shards


@dataclass(frozen=True)
class RangePartitioning:
    """A value-range partition spec: *bounds* are the ascending interior
    cut points, partition ``i`` holds rows whose *column* value falls in
    ``[bounds[i-1], bounds[i])`` (open at both ends).

    Unlike the engine's contiguous ``(shard_count, shard_index)`` row
    ranges, range partitions are defined by *values*: on a table not
    clustered on the partition column they select non-contiguous row
    sets.  Their payoff is that consecutive partitions are **disjoint on
    the partition key**, which lets an order-preserving gather on that
    key concatenate the partition streams instead of heap-merging them
    (see :class:`repro.engine.exchange.MergeExchange`).
    """

    column: str
    bounds: tuple

    def __post_init__(self) -> None:
        bounds = tuple(self.bounds)
        if not bounds:
            raise ValueError("range partitioning needs at least one bound")
        if any(not a < b for a, b in zip(bounds, bounds[1:])):
            raise ValueError(f"partition bounds must be strictly ascending: {bounds}")
        object.__setattr__(self, "bounds", bounds)

    @property
    def num_partitions(self) -> int:
        return len(self.bounds) + 1

    def partition_index(self, value) -> int:
        if value is None:
            return 0  # SQL NULLs sort first; keep them in the lowest partition
        return bisect_right(self.bounds, value)

    def spec_token(self) -> str:
        """Canonical text of the spec (repr/debugging; cache keys use the
        table's version counter, bumped by :meth:`Table.set_partitioning`)."""
        return f"range({self.column}: {', '.join(map(repr, self.bounds))})"

    def __repr__(self) -> str:
        return f"RangePartitioning({self.spec_token()})"


class Table:
    """A named base relation."""

    def __init__(
        self,
        name: str,
        schema: Schema,
        rows: Optional[list[tuple]] = None,
        clustering_order: SortOrder = EMPTY_ORDER,
        stats: Optional[TableStats] = None,
        primary_key: Optional[Sequence[str]] = None,
        partitioning: Optional[RangePartitioning] = None,
    ) -> None:
        if rows is None and stats is None:
            raise ValueError(f"table {name}: need rows or declared stats")
        for col in clustering_order:
            if col not in schema:
                raise ValueError(f"table {name}: clustering column {col!r} not in schema")
        if partitioning is not None and partitioning.column not in schema:
            raise ValueError(f"table {name}: partition column "
                             f"{partitioning.column!r} not in schema")
        self.name = name
        self.schema = schema
        self._rows = rows
        self.clustering_order = clustering_order
        self.partitioning = partitioning
        self.primary_key = tuple(primary_key) if primary_key else None
        if self.primary_key:
            for col in self.primary_key:
                if col not in schema:
                    raise ValueError(f"table {name}: key column {col!r} not in schema")
        if rows is not None and clustering_order:
            self._sort_rows_by(clustering_order)
        self._stats = stats if stats is not None else TableStats.measure(self._rows or [], schema)
        #: Bumped every time the table's statistics are replaced; plan
        #: caches key on it so stale plans are invalidated (see
        #: :mod:`repro.service.plan_cache`).
        self.stats_version = 0
        self._shard_stats_cache: dict[int, list[TableStats]] = {}
        self._partition_stats_cache: Optional[list[TableStats]] = None
        self._partition_ranges_cache: Optional[list[tuple[int, int]]] = None

    # -- statistics -----------------------------------------------------------------
    @property
    def stats(self) -> TableStats:
        return self._stats

    @stats.setter
    def stats(self, new_stats: TableStats) -> None:
        self._stats = new_stats
        self.stats_version += 1
        self._shard_stats_cache.clear()
        self._partition_stats_cache = None
        # Row contents may have changed along with the statistics — the
        # bisected partition row ranges are measured state too.
        self._partition_ranges_cache = None

    def update_stats(self, new_stats: Optional[TableStats] = None) -> TableStats:
        """Replace the table's statistics (re-measuring from rows when no
        explicit stats are given) and bump :attr:`stats_version`."""
        if new_stats is None:
            new_stats = TableStats.measure(self._rows or [], self.schema)
        self.stats = new_stats
        return new_stats

    def shard_stats(self, shard_count: int) -> Optional[list[TableStats]]:
        """Measured statistics of each contiguous *shard_count*-way shard,
        or ``None`` for stats-only tables (the optimizer then falls back
        to the uniform ``scaled(1/k)`` estimate).  Cached per shard count;
        invalidated whenever the table's statistics are replaced."""
        if self._rows is None or shard_count < 2 or len(self._rows) < shard_count:
            return None
        cached = self._shard_stats_cache.get(shard_count)
        if cached is None:
            cached = measure_shards(self._rows, self.schema, shard_count)
            self._shard_stats_cache[shard_count] = cached
        return cached

    def partition_stats(self) -> Optional[list[TableStats]]:
        """Measured statistics of each range partition, or ``None`` when
        the table is stats-only or unpartitioned."""
        if self._rows is None or self.partitioning is None:
            return None
        if self._partition_stats_cache is None:
            position = self.schema.positions([self.partitioning.column])[0]
            self._partition_stats_cache = measure_partitions(
                self._rows, self.schema, position,
                self.partitioning.partition_index,
                self.partitioning.num_partitions)
        return self._partition_stats_cache

    # -- range partitioning ----------------------------------------------------------
    def set_partitioning(self, partitioning: Optional[RangePartitioning]) -> None:
        """(Re)declare the table's range partition spec.

        Counts as a physical-layout change: bumps :attr:`stats_version`
        so plan caches keyed on the table's version re-optimize — the
        partition spec participates in plan choice exactly like an index.
        """
        if partitioning is not None and partitioning.column not in self.schema:
            raise ValueError(f"table {self.name}: partition column "
                             f"{partitioning.column!r} not in schema")
        self.partitioning = partitioning
        self.stats_version += 1
        self._partition_stats_cache = None
        self._partition_ranges_cache = None

    @property
    def partition_contiguous(self) -> bool:
        """Whether range partitions map to contiguous row ranges — true
        when the clustering order leads with the partition column, so a
        partition scan can slice instead of filtering the whole table."""
        return (self.partitioning is not None
                and bool(self.clustering_order)
                and self.clustering_order.as_tuple[0] == self.partitioning.column)

    def partition_row_bounds(self, partition_index: int) -> Optional[tuple[int, int]]:
        """Global row range ``[lo, hi)`` of one range partition, or
        ``None`` when partitions are not contiguous row ranges."""
        if self._rows is None or not self.partition_contiguous:
            return None
        if self._partition_ranges_cache is None:
            part = self.partitioning
            position = self.schema.positions([part.column])[0]
            cuts = [0]
            for bound in part.bounds:
                cuts.append(bisect_left(self._rows, bound,
                                        key=lambda row: row[position]))
            cuts.append(len(self._rows))
            self._partition_ranges_cache = list(zip(cuts, cuts[1:]))
        return self._partition_ranges_cache[partition_index]

    # -- rows ----------------------------------------------------------------------
    @property
    def is_materialized(self) -> bool:
        return self._rows is not None

    @property
    def rows(self) -> list[tuple]:
        if self._rows is None:
            raise RuntimeError(
                f"table {self.name} is stats-only (optimizer experiments); "
                "it cannot be scanned by the executor"
            )
        return self._rows

    def __len__(self) -> int:
        return self.stats.num_rows if self._rows is None else len(self._rows)

    def _sort_rows_by(self, order: SortOrder) -> None:
        positions = self.schema.positions(list(order))
        self._rows.sort(key=lambda row: tuple(row[i] for i in positions))

    # -- physical properties ---------------------------------------------------------
    @property
    def num_blocks(self) -> int:
        from .statistics import blocks_for
        return blocks_for(len(self), self.schema.row_bytes)

    def functional_dependencies(self) -> list[FunctionalDependency]:
        """FDs induced by the primary key, if declared."""
        if not self.primary_key:
            return []
        return [FunctionalDependency.key(self.primary_key, self.schema.names)]

    def verify_clustering(self) -> bool:
        """Check that materialised rows honour the clustering order."""
        if self._rows is None or not self.clustering_order:
            return True
        positions = self.schema.positions(list(self.clustering_order))
        prev = None
        for row in self._rows:
            key = tuple(row[i] for i in positions)
            if prev is not None and key < prev:
                return False
            prev = key
        return True

    def __repr__(self) -> str:
        kind = "materialized" if self.is_materialized else "stats-only"
        return (f"Table({self.name}, {len(self)} rows, {kind}, "
                f"clustered on {self.clustering_order})")


class Index:
    """A secondary index over a table.

    ``key`` is the index sort order; ``included`` lists extra columns
    stored in the leaves.  An index *covers* a set of attributes when
    key ∪ included ⊇ attributes — the paper's query-covering indices
    ("secondary indices that cover a query make it very efficient to
    obtain desired sort orders without accessing the data pages").
    """

    def __init__(self, name: str, table: Table, key: SortOrder,
                 included: Sequence[str] = ()) -> None:
        for col in list(key) + list(included):
            if col not in table.schema:
                raise ValueError(f"index {name}: column {col!r} not in {table.name}")
        overlap = set(included) & key.attrs()
        if overlap:
            raise ValueError(f"index {name}: included columns {overlap} duplicate key columns")
        self.name = name
        self.table = table
        self.key = key
        self.included = tuple(included)

    @property
    def columns(self) -> tuple[str, ...]:
        """All columns available from the index leaves, key first."""
        return self.key.as_tuple + self.included

    def covers(self, attributes: Iterable[str]) -> bool:
        return set(attributes) <= set(self.columns)

    def entry_bytes(self) -> int:
        """Average leaf-entry width: the covered columns plus a row pointer."""
        schema = self.table.schema
        width = sum(schema[c].avg_size for c in self.columns)
        return width + 8  # 8-byte TID

    @property
    def leaf_schema(self) -> Schema:
        return self.table.schema.project(list(self.columns))

    def scan_rows(self) -> list[tuple]:
        """Leaf entries (covered columns only), in index-key order."""
        schema = self.table.schema
        proj = schema.positions(list(self.columns))
        key_positions = schema.positions(list(self.key))
        rows = [tuple(r[i] for i in proj) for r in self.table.rows]
        key_width = len(key_positions)
        rows.sort(key=lambda row: row[:key_width])
        return rows

    def __repr__(self) -> str:
        inc = f" include {list(self.included)}" if self.included else ""
        return f"Index({self.name} on {self.table.name} {self.key}{inc})"
