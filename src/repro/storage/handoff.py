"""Worker-side catalog handoff for the process-pool execution backend.

A worker process cannot share the serving process's :class:`Catalog`
object graph — it needs its own copy of every table a shipped subplan
might scan.  :func:`catalog_payload` snapshots a catalog into a single
picklable :class:`CatalogPayload` (schemas, rows, clustering orders,
statistics, partition specs, covering indexes and the system
parameters), and :func:`build_catalog` reconstructs an equivalent
catalog on the worker side.

The payload is shipped **once per pool**, through the pool initializer —
not per query — so the per-task traffic is just the (small) pickled
subplan and the result rows.  Under the ``fork`` start method the
payload is inherited by reference and never actually serialized; under
``spawn`` it is pickled once per worker.

The payload also carries the source catalog's aggregate
:attr:`~repro.storage.catalog.Catalog.stats_version` as
:attr:`CatalogPayload.version_token`, so a pool can cheaply detect that
its workers were built against a catalog that has since changed
(statistics refresh, new index, new partitioning) and rebuild itself.
Statistics changes alone never alter query *results* — only row changes
do — but the token is bumped by both, which errs on the safe side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.sort_order import SortOrder
from .catalog import Catalog, SystemParameters
from .schema import Schema
from .statistics import TableStats
from .table import RangePartitioning


@dataclass(frozen=True)
class _TableSpec:
    """Everything needed to rebuild one table in a worker."""

    name: str
    schema: Schema
    rows: Optional[list[tuple]]
    clustering_order: SortOrder
    stats: TableStats
    primary_key: Optional[tuple[str, ...]]
    partitioning: Optional[RangePartitioning]


@dataclass(frozen=True)
class _IndexSpec:
    name: str
    table_name: str
    key: SortOrder
    included: tuple[str, ...]


@dataclass(frozen=True)
class CatalogPayload:
    """A picklable snapshot of a catalog (see module docstring)."""

    params: SystemParameters
    tables: tuple[_TableSpec, ...]
    indexes: tuple[_IndexSpec, ...]
    version_token: int


def catalog_payload(catalog: Catalog) -> CatalogPayload:
    """Snapshot *catalog* for shipping to worker processes."""
    tables = []
    indexes = []
    for table in catalog.tables():
        tables.append(_TableSpec(
            name=table.name,
            schema=table.schema,
            rows=table._rows,
            clustering_order=table.clustering_order,
            stats=table.stats,
            primary_key=table.primary_key,
            partitioning=table.partitioning,
        ))
        for index in catalog.indexes_of(table.name):
            indexes.append(_IndexSpec(index.name, table.name, index.key,
                                      index.included))
    return CatalogPayload(catalog.params, tuple(tables), tuple(indexes),
                          catalog.stats_version)


def build_catalog(payload: CatalogPayload) -> Catalog:
    """Reconstruct a worker-side catalog from a payload.

    Rows are installed as-is (they were snapshotted already clustered),
    and declared statistics are reused instead of re-measured, so the
    rebuilt tables are byte-for-byte equivalent scan sources.
    """
    catalog = Catalog(payload.params)
    for spec in payload.tables:
        # Pass clustering separately from rows to skip the constructor's
        # re-sort: the snapshot rows are already in clustering order.
        table = catalog.create_table(spec.name, spec.schema, rows=spec.rows,
                                     stats=spec.stats,
                                     primary_key=spec.primary_key,
                                     partitioning=spec.partitioning)
        table.clustering_order = spec.clustering_order
    for index in payload.indexes:
        catalog.create_index(index.name, index.table_name, index.key,
                             index.included)
    return catalog
