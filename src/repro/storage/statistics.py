"""Catalog statistics and derived cardinality estimates.

The optimizer's cost model (Section 3.2) needs three quantities:

* ``N(e)`` — expected number of result tuples,
* ``B(e)`` — expected number of blocks,
* ``D(e, s)`` — number of distinct values of attribute set *s*.

:class:`TableStats` stores base-table numbers (either measured from a
materialised table or declared for *stats-only* catalogs that model the
paper's full-size TPC-H tables without materialising 6M rows), and
:class:`StatsView` carries derived statistics through the logical
algebra using System-R style estimation, refined with two pieces of
catalog knowledge:

* **candidate keys** — a join whose equality pairs cover a key of one
  side behaves like a foreign-key lookup, not an independent cross
  filter;
* **column-group distinct counts** — multi-column distincts for
  correlated groups (e.g. TPC-H's ``{l_partkey, l_suppkey}`` has 800K
  combinations, not ``200K × 10K``), the equivalent of the "extended
  statistics" real systems keep.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

from ..core.sort_order import AttributeEquivalence
from .schema import Schema

#: Default disk block size, bytes (the paper assumes 4 KB blocks).
DEFAULT_BLOCK_SIZE = 4096

#: Default sketch precision: 2**10 = 1024 one-byte registers per column.
DEFAULT_SKETCH_PRECISION = 10


class DistinctSketch:
    """Mergeable HLL-style distinct-count sketch.

    ``2**p`` one-byte registers, each holding the maximum leading-zero
    rank observed for hashes routed to it.  Two sketches built over
    different row sets merge by register-wise max, so the merged sketch
    estimates the distinct count of the *union* of the two value sets —
    overlap-aware, unlike summing per-input distinct counts.

    Hashing uses :func:`hashlib.blake2b` over ``repr(value)`` rather
    than the builtin ``hash``: the builtin is salted per process, and
    sketches travel to pool workers inside catalog snapshots, so two
    processes must bucket the same value identically for merges to be
    meaningful.
    """

    __slots__ = ("p", "registers")

    def __init__(self, p: int = DEFAULT_SKETCH_PRECISION,
                 registers: Optional[bytes] = None) -> None:
        if not 4 <= p <= 16:
            raise ValueError("sketch precision must be in [4, 16]")
        self.p = p
        m = 1 << p
        if registers is None:
            self.registers = bytearray(m)
        else:
            if len(registers) != m:
                raise ValueError("register array does not match precision")
            self.registers = bytearray(registers)

    def add(self, value: object) -> None:
        digest = hashlib.blake2b(repr(value).encode("utf-8", "backslashreplace"),
                                 digest_size=8).digest()
        h = int.from_bytes(digest, "big")
        index = h >> (64 - self.p)
        width = 64 - self.p
        rest = h & ((1 << width) - 1)
        rank = width - rest.bit_length() + 1
        if rank > self.registers[index]:
            self.registers[index] = rank

    @staticmethod
    def of_values(values: Iterable[object],
                  p: int = DEFAULT_SKETCH_PRECISION) -> "DistinctSketch":
        sketch = DistinctSketch(p)
        for value in values:
            sketch.add(value)
        return sketch

    def union(self, other: "DistinctSketch") -> "DistinctSketch":
        """Sketch of the union of both value sets (register-wise max)."""
        if self.p != other.p:
            raise ValueError("cannot merge sketches of different precision")
        merged = bytes(max(a, b) for a, b in zip(self.registers, other.registers))
        return DistinctSketch(self.p, merged)

    def estimate(self) -> float:
        """HLL estimate with the linear-counting small-range correction."""
        m = 1 << self.p
        alpha = 0.7213 / (1.0 + 1.079 / m)
        harmonic = 0.0
        zeros = 0
        for r in self.registers:
            harmonic += 2.0 ** -r
            if r == 0:
                zeros += 1
        raw = alpha * m * m / harmonic
        if raw <= 2.5 * m and zeros:
            return m * math.log(m / zeros)
        return raw

    def __reduce__(self):
        return (DistinctSketch, (self.p, bytes(self.registers)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DistinctSketch(p={self.p}, estimate~{self.estimate():.0f})"


def blocks_for(num_rows: float, row_bytes: int, block_size: int = DEFAULT_BLOCK_SIZE) -> int:
    """``B(e)`` from a row count and average row width."""
    if num_rows <= 0:
        return 0
    return max(1, math.ceil(num_rows * row_bytes / block_size))


@dataclass
class TableStats:
    """Statistics of one base table.

    ``distinct`` maps column name → number of distinct values (absent
    columns default to ``num_rows``, i.e. treated as unique).
    ``group_distinct`` optionally maps frozen column-name sets to their
    joint distinct count, for correlated groups.
    """

    num_rows: int
    distinct: dict[str, int] = field(default_factory=dict)
    group_distinct: dict[frozenset, int] = field(default_factory=dict)
    sketches: dict[str, DistinctSketch] = field(default_factory=dict)

    def distinct_of(self, column: str) -> int:
        if self.num_rows == 0:
            return 0
        d = self.distinct.get(column, self.num_rows)
        return max(1, min(d, self.num_rows))

    @staticmethod
    def measure(rows: list[tuple], schema: Schema) -> "TableStats":
        """Exact statistics computed from materialised rows.

        Alongside exact distinct counts, each column gets a
        :class:`DistinctSketch` built from the same distinct value set
        (adding duplicates is idempotent, so hashing only the distinct
        values is both cheaper and identical).  Per-shard and
        per-partition stats therefore carry mergeable sketches for free.
        """
        distinct: dict[str, int] = {}
        sketches: dict[str, DistinctSketch] = {}
        for i, col in enumerate(schema):
            values = {row[i] for row in rows}
            distinct[col.name] = len(values)
            sketches[col.name] = DistinctSketch.of_values(values)
        return TableStats(num_rows=len(rows), distinct=distinct,
                          sketches=sketches)


def measure_shards(rows: list[tuple], schema: Schema,
                   shard_count: int) -> list[TableStats]:
    """Exact per-shard statistics of *shard_count* contiguous row ranges.

    Shard *i* covers rows ``[i·n/k, (i+1)·n/k)`` — the same arithmetic as
    :func:`repro.engine.scans.shard_bounds` — so the optimizer's
    shard-aware placement is priced with the distinct counts and row
    counts each shard will *actually* see, not the uniform ``scaled(1/k)``
    approximation (which is exact on row counts for contiguous shards but
    can be wildly wrong on distincts under clustering skew).
    """
    n = len(rows)
    out = []
    for i in range(shard_count):
        lo = i * n // shard_count
        hi = (i + 1) * n // shard_count
        out.append(TableStats.measure(rows[lo:hi], schema))
    return out


def measure_partitions(rows: list[tuple], schema: Schema, position: int,
                       index_of, num_partitions: int) -> list[TableStats]:
    """Exact per-partition statistics under a value-range partitioning.

    ``index_of(value)`` maps a partition-column value (at tuple
    *position*) to its partition index.  Unlike contiguous shards, range
    partitions skew on *row counts* too, which is what makes measured
    statistics load-bearing for the placement decision.
    """
    buckets: list[list[tuple]] = [[] for _ in range(num_partitions)]
    for row in rows:
        buckets[index_of(row[position])].append(row)
    return [TableStats.measure(bucket, schema) for bucket in buckets]


class StatsView:
    """Derived statistics of an intermediate result (immutable).

    ``keys`` holds candidate keys (frozen column-name sets) known to be
    unique in this result; ``group_distinct`` joint distinct counts for
    specific column groups.  Both refine ``D(e, s)``.
    """

    __slots__ = ("schema", "num_rows", "_distinct", "_eq", "keys", "group_distinct",
                 "_sketches")

    def __init__(self, schema: Schema, num_rows: float,
                 distinct: Mapping[str, float],
                 eq: Optional[AttributeEquivalence] = None,
                 keys: Iterable[frozenset] = (),
                 group_distinct: Optional[Mapping[frozenset, float]] = None,
                 sketches: Optional[Mapping[str, DistinctSketch]] = None) -> None:
        self.schema = schema
        self.num_rows = max(0.0, float(num_rows))
        self._distinct = dict(distinct)
        self._eq = eq
        self.keys = tuple(frozenset(k) for k in keys)
        self.group_distinct = dict(group_distinct or {})
        #: Per-column value-domain sketches.  A sketch bounds the set of
        #: values a column *may* hold, so it survives filters and joins
        #: (which only shrink the domain) and merges under unions.
        self._sketches = dict(sketches or {})

    # -- core quantities ---------------------------------------------------------
    @property
    def N(self) -> float:
        """``N(e)``: expected tuple count."""
        return self.num_rows

    def B(self, block_size: int = DEFAULT_BLOCK_SIZE) -> int:
        """``B(e)``: expected block count at the schema's row width."""
        return blocks_for(self.num_rows, self.schema.row_bytes, block_size)

    def _resolve(self, column: str) -> Optional[str]:
        """Map *column* to a known column via equivalence classes."""
        if column in self._distinct:
            return column
        if self._eq is not None:
            for name in self._distinct:
                if self._eq.same(name, column):
                    return name
        return None

    def distinct_of(self, column: str) -> float:
        """``D(e, {column})`` with equivalence-class fallback."""
        if self.num_rows == 0:
            return 0.0
        name = self._resolve(column)
        d = self._distinct.get(name) if name else None
        if d is None:
            d = self.num_rows
        return max(1.0, min(d, self.num_rows))

    def sketch_of(self, column: str) -> Optional[DistinctSketch]:
        """This column's value-domain sketch, via equivalence classes."""
        if column in self._sketches:
            return self._sketches[column]
        if self._eq is not None:
            for name, sketch in self._sketches.items():
                if self._eq.same(name, column):
                    return sketch
        return None

    def _covers_key(self, columns: set[str]) -> bool:
        """Whether *columns* (eq-resolved) contain a candidate key."""
        resolved = {self._resolve(c) or c for c in columns}
        return any(key <= resolved for key in self.keys)

    def distinct_of_set(self, columns: Iterable[str]) -> float:
        """``D(e, s)``: exact group statistic if declared, ``N`` if the
        set covers a key, independence product otherwise."""
        columns = list(columns)
        if not columns:
            return 1.0
        if self.num_rows == 0:
            return 0.0
        resolved = frozenset(self._resolve(c) or c for c in columns)
        exact = self.group_distinct.get(resolved)
        if exact is not None:
            return max(1.0, min(exact, self.num_rows))
        if self._covers_key(set(columns)):
            return self.num_rows
        product = 1.0
        for c in columns:
            product *= self.distinct_of(c)
            if product >= self.num_rows:
                return self.num_rows
        return max(1.0, min(product, self.num_rows))

    # -- derivation through operators ----------------------------------------------
    def scaled(self, selectivity: float, schema: Optional[Schema] = None) -> "StatsView":
        """Result of a filter with the given selectivity."""
        selectivity = min(1.0, max(0.0, selectivity))
        new_rows = self.num_rows * selectivity
        new_schema = schema or self.schema
        distinct = {c: min(d, new_rows) if new_rows > 0 else 0.0
                    for c, d in self._distinct.items()}
        groups = {g: min(d, new_rows) for g, d in self.group_distinct.items()}
        return StatsView(new_schema, new_rows, distinct, self._eq, self.keys, groups,
                         self._sketches)

    def projected(self, names: Iterable[str]) -> "StatsView":
        names = list(names)
        schema = self.schema.project(names)
        name_set = set(names)
        distinct = {n: self._distinct[n] for n in names if n in self._distinct}
        keys = [k for k in self.keys if k <= name_set]
        groups = {g: d for g, d in self.group_distinct.items() if g <= name_set}
        sketches = {n: self._sketches[n] for n in names if n in self._sketches}
        return StatsView(schema, self.num_rows, distinct, self._eq, keys, groups,
                         sketches)

    def with_eq(self, eq: AttributeEquivalence) -> "StatsView":
        return StatsView(self.schema, self.num_rows, self._distinct, eq,
                         self.keys, self.group_distinct, self._sketches)

    def with_rows(self, num_rows: float) -> "StatsView":
        distinct = {c: min(d, num_rows) for c, d in self._distinct.items()}
        groups = {g: min(d, num_rows) for g, d in self.group_distinct.items()}
        return StatsView(self.schema, num_rows, distinct, self._eq, self.keys, groups,
                         self._sketches)

    def with_keys(self, keys: Iterable[frozenset]) -> "StatsView":
        return StatsView(self.schema, self.num_rows, self._distinct, self._eq,
                         tuple(self.keys) + tuple(frozenset(k) for k in keys),
                         self.group_distinct, self._sketches)

    def join(self, other: "StatsView",
             join_pairs: list[tuple[str, str]],
             eq: Optional[AttributeEquivalence] = None) -> "StatsView":
        """Equi-join estimate: ``N = Nl·Nr / max(D_l(s), D_r(s))`` over the
        pair *sets* (so keys and group statistics engage), with key-based
        output-key propagation."""
        schema = self.schema.concat(other.schema)
        eq = eq or self._eq
        if self.num_rows == 0 or other.num_rows == 0:
            return StatsView(schema, 0.0, {}, eq)
        left_cols = [l for l, _ in join_pairs]
        right_cols = [r for _, r in join_pairs]
        d_left = self.distinct_of_set(left_cols)
        d_right = other.distinct_of_set(right_cols)
        rows = self.num_rows * other.num_rows / max(1.0, d_left, d_right)

        distinct = dict(self._distinct)
        distinct.update(other._distinct)
        for left_col, right_col in join_pairs:
            d = min(self.distinct_of(left_col), other.distinct_of(right_col))
            distinct[left_col] = d
            distinct[right_col] = d
        distinct = {c: min(d, rows) for c, d in distinct.items()}

        # Key propagation: when the pair set covers a key of one side,
        # each row of the *other* side matches at most one row, so the
        # other side's keys remain keys of the join output.
        out_keys: list[frozenset] = []
        if other._covers_key(set(right_cols)):
            out_keys.extend(self.keys)
        if self._covers_key(set(left_cols)):
            out_keys.extend(other.keys)
        groups = dict(self.group_distinct)
        groups.update(other.group_distinct)
        groups = {g: min(d, rows) for g, d in groups.items()}
        sketches = dict(self._sketches)
        sketches.update(other._sketches)
        return StatsView(schema, rows, distinct, eq, out_keys, groups, sketches)

    def union(self, other: "StatsView",
              eq: Optional[AttributeEquivalence] = None) -> "StatsView":
        """Union estimate (left schema wins, columns paired positionally):
        row counts add, and per-column distincts combine by *sketch
        union* when both sides carry a sketch — overlap-aware, so two
        branches over the same value domain no longer double-count — and
        fall back to the no-overlap sum otherwise, capped at the row
        count.  Shared by the Annotator and the physical union candidates
        so logical and physical estimates cannot diverge."""
        rows = self.num_rows + other.num_rows
        rename = dict(zip(self.schema.names, other.schema.names))
        distinct: dict[str, float] = {}
        sketches: dict[str, DistinctSketch] = {}
        for c in self.schema.names:
            no_overlap = self.distinct_of(c) + other.distinct_of(rename[c])
            d = no_overlap
            left = self.sketch_of(c)
            right = other.sketch_of(rename[c])
            if left is not None and right is not None and left.p == right.p:
                merged = left.union(right)
                sketches[c] = merged
                d = min(d, merged.estimate())
            distinct[c] = min(rows, d)
        return StatsView(self.schema, rows, distinct, eq or self._eq,
                         sketches=sketches)

    def grouped(self, group_columns: list[str], schema: Schema) -> "StatsView":
        """Aggregate output: one row per distinct group key (which is, by
        construction, a key of the output)."""
        rows = self.distinct_of_set(group_columns)
        distinct = {c: min(self.distinct_of(c), rows) for c in group_columns}
        sketches = {c: self._sketches[c] for c in group_columns
                    if c in self._sketches}
        return StatsView(schema, rows, distinct, self._eq,
                         [frozenset(group_columns)], {}, sketches)

    @staticmethod
    def of_table(schema: Schema, stats: TableStats,
                 eq: Optional[AttributeEquivalence] = None,
                 keys: Iterable[Iterable[str]] = ()) -> "StatsView":
        distinct = {c.name: float(stats.distinct_of(c.name)) for c in schema}
        key_sets = [frozenset(k) for k in keys]
        groups = {frozenset(g): float(d) for g, d in stats.group_distinct.items()}
        sketches = {c.name: stats.sketches[c.name] for c in schema
                    if c.name in stats.sketches}
        return StatsView(schema, float(stats.num_rows), distinct, eq,
                         key_sets, groups, sketches)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StatsView(N={self.num_rows:.0f}, cols={self.schema.names})"
