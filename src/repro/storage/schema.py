"""Relational schemas.

A :class:`Schema` is an ordered list of :class:`Column` descriptors.  Rows
are plain Python tuples positionally aligned with the schema; the schema
supplies name→position lookup and per-column byte widths used by the
simulated block I/O model (the paper costs everything in 4 KB-block I/O
units, so byte widths matter).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence


@dataclass(frozen=True)
class Column:
    """A named, typed column with an average storage width in bytes.

    ``avg_size`` feeds ``B(e)`` (blocks of an intermediate result); the
    paper's Example 1 relies on tuple widths of 100/80/40 bytes.
    """

    name: str
    type: str = "int"
    avg_size: int = 8

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("column name must be non-empty")
        if self.avg_size <= 0:
            raise ValueError(f"column {self.name}: avg_size must be positive")

    def renamed(self, name: str) -> "Column":
        return Column(name, self.type, self.avg_size)


class Schema:
    """An ordered collection of :class:`Column` objects with fast name lookup."""

    __slots__ = ("_columns", "_index")

    def __init__(self, columns: Iterable[Column]) -> None:
        self._columns: tuple[Column, ...] = tuple(columns)
        self._index: dict[str, int] = {}
        for i, col in enumerate(self._columns):
            if col.name in self._index:
                raise ValueError(f"duplicate column name {col.name!r} in schema")
            self._index[col.name] = i

    # -- container protocol -------------------------------------------------------
    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self._columns)

    def __getitem__(self, key) -> Column:
        if isinstance(key, str):
            return self._columns[self._index[key]]
        return self._columns[key]

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self._columns == other._columns

    def __hash__(self) -> int:
        return hash(self._columns)

    def __repr__(self) -> str:
        return f"Schema({', '.join(c.name for c in self._columns)})"

    # -- lookups ------------------------------------------------------------------
    @property
    def names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self._columns)

    def position(self, name: str) -> int:
        """Index of column *name*; raises ``KeyError`` with a helpful message."""
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(f"no column {name!r}; schema has {self.names}") from None

    def positions(self, names: Sequence[str]) -> tuple[int, ...]:
        return tuple(self.position(n) for n in names)

    def has_all(self, names: Iterable[str]) -> bool:
        return all(n in self._index for n in names)

    @property
    def row_bytes(self) -> int:
        """Average width of one row, in bytes (min 1)."""
        return max(1, sum(c.avg_size for c in self._columns))

    # -- construction helpers -----------------------------------------------------
    def project(self, names: Sequence[str]) -> "Schema":
        """Schema restricted to *names*, in the given order."""
        return Schema(self._columns[self.position(n)] for n in names)

    def concat(self, other: "Schema") -> "Schema":
        """Schema of a join output: our columns followed by *other*'s."""
        return Schema(self._columns + other._columns)

    def rename(self, mapping: dict[str, str]) -> "Schema":
        return Schema(c.renamed(mapping.get(c.name, c.name)) for c in self._columns)

    @staticmethod
    def of(*cols: tuple) -> "Schema":
        """Shorthand: ``Schema.of(("a", "int", 4), ("b",), "c")``."""
        built = []
        for spec in cols:
            if isinstance(spec, str):
                built.append(Column(spec))
            elif isinstance(spec, Column):
                built.append(spec)
            else:
                built.append(Column(*spec))
        return Schema(built)


@dataclass(frozen=True)
class FunctionalDependency:
    """A functional dependency ``determinants → dependents``.

    Used for order-requirement reduction (Simmen-style): once a stream is
    sorted on a set of attributes that functionally determine *x*, adding
    *x* to the sort key is a no-op.  The paper invokes this for Query 3
    ("the functional dependency {ps_partkey, ps_suppkey} → {ps_availqty}
    holds").
    """

    determinants: frozenset[str]
    dependents: frozenset[str]

    def __post_init__(self) -> None:
        if not self.determinants:
            raise ValueError("functional dependency needs at least one determinant")

    @staticmethod
    def key(key_columns: Iterable[str], all_columns: Iterable[str]) -> "FunctionalDependency":
        """FD induced by a candidate key: key → every other column."""
        key_set = frozenset(key_columns)
        return FunctionalDependency(key_set, frozenset(all_columns) - key_set)

    def __repr__(self) -> str:
        lhs = ",".join(sorted(self.determinants))
        rhs = ",".join(sorted(self.dependents))
        return f"FD({lhs} -> {rhs})"
