"""Sort-order algebra (Section 3 of the paper).

A *sort order* is a sequence of attribute names, e.g. ``(l_suppkey,
l_partkey)``.  Following the paper we ignore sort direction
(ascending/descending): every technique in the paper, and therefore in
this library, is direction-agnostic.

The paper's notation maps onto this module as follows:

=====================  =====================================================
Paper                  Here
=====================  =====================================================
``ε``                  :data:`EMPTY_ORDER`
``attrs(o)``           :meth:`SortOrder.attrs`
``|o|``                ``len(o)``
``o1 ≤ o2``            :meth:`SortOrder.is_prefix_of`
``o1 < o2``            :meth:`SortOrder.is_strict_prefix_of`
``o1 ∧ o2``            :func:`longest_common_prefix`
``o1 + o2``            :meth:`SortOrder.concat`
``o1 − o2``            :meth:`SortOrder.minus`
``o ∧ s``              :func:`prefix_in_set` (longest prefix within set *s*)
``⟨s⟩``                :func:`arbitrary_permutation`
``P(s)``               :func:`all_permutations`
=====================  =====================================================

Attribute equivalence
---------------------
The paper renames join attributes so that both sides of an equality
predicate carry the same name ("w.l.g., we use the same name for
attributes being compared from either side").  Real schemas use distinct
qualified names (``ps_suppkey`` vs ``l_suppkey``), so every comparison in
this module optionally accepts an :class:`AttributeEquivalence` — a
union-find over attribute names built from the query's equality
predicates — and treats equivalent attributes as equal.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Optional, Sequence


class AttributeEquivalence:
    """Union-find over attribute names.

    Join predicates such as ``ps_suppkey = l_suppkey`` make the two
    attribute names interchangeable for the purposes of order matching.
    An instance of this class records such equivalences and answers
    ``same(a, b)`` queries in near-constant time.
    """

    __slots__ = ("_parent",)

    def __init__(self) -> None:
        self._parent: dict[str, str] = {}

    def _find(self, a: str) -> str:
        parent = self._parent
        if a not in parent:
            return a
        root = a
        while parent.get(root, root) != root:
            root = parent[root]
        # Path compression.
        while parent.get(a, a) != root:
            parent[a], a = root, parent[a]
        return root

    def add_equivalence(self, a: str, b: str) -> None:
        """Record that attributes *a* and *b* are interchangeable."""
        ra, rb = self._find(a), self._find(b)
        if ra != rb:
            # Deterministic union: smaller name becomes the root so that
            # canonicalisation does not depend on insertion order.
            lo, hi = sorted((ra, rb))
            self._parent[hi] = lo
            self._parent.setdefault(lo, lo)

    def same(self, a: str, b: str) -> bool:
        """Whether *a* and *b* denote the same (equivalence class of) attribute."""
        return a == b or self._find(a) == self._find(b)

    def canonical(self, a: str) -> str:
        """Canonical representative of *a*'s equivalence class."""
        return self._find(a)

    def classmates(self, a: str, universe: Iterable[str]) -> list[str]:
        """All attributes in *universe* equivalent to *a* (including *a* itself)."""
        return [b for b in universe if self.same(a, b)]

    def copy(self) -> "AttributeEquivalence":
        clone = AttributeEquivalence()
        clone._parent = dict(self._parent)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        classes: dict[str, list[str]] = {}
        for a in self._parent:
            classes.setdefault(self._find(a), []).append(a)
        return f"AttributeEquivalence({classes})"


def _same(a: str, b: str, eq: Optional[AttributeEquivalence]) -> bool:
    if a == b:
        return True
    return eq is not None and eq.same(a, b)


class SortOrder:
    """An immutable sequence of attribute names denoting a sort order.

    ``SortOrder()`` is the empty order ``ε``.  Instances behave like
    read-only tuples of strings and are hashable, so they can key memo
    tables in the optimizer.
    """

    __slots__ = ("_attrs",)

    def __init__(self, attrs: Iterable[str] = ()) -> None:
        attrs = tuple(attrs)
        for a in attrs:
            if not isinstance(a, str) or not a:
                raise TypeError(f"sort order attributes must be non-empty strings, got {a!r}")
        if len(set(attrs)) != len(attrs):
            raise ValueError(f"duplicate attribute in sort order {attrs!r}")
        self._attrs = attrs

    # -- basic container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._attrs)

    def __iter__(self) -> Iterator[str]:
        return iter(self._attrs)

    def __getitem__(self, idx):
        result = self._attrs[idx]
        return SortOrder(result) if isinstance(idx, slice) else result

    def __bool__(self) -> bool:
        return bool(self._attrs)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SortOrder) and self._attrs == other._attrs

    def __hash__(self) -> int:
        return hash(("SortOrder", self._attrs))

    def __repr__(self) -> str:
        return f"SortOrder({', '.join(self._attrs)})" if self._attrs else "SortOrder(ε)"

    def __str__(self) -> str:
        return "(" + ", ".join(self._attrs) + ")" if self._attrs else "ε"

    # -- paper operators ----------------------------------------------------------
    @property
    def as_tuple(self) -> tuple[str, ...]:
        return self._attrs

    def attrs(self) -> frozenset[str]:
        """``attrs(o)``: the set of attributes in the order."""
        return frozenset(self._attrs)

    def is_empty(self) -> bool:
        return not self._attrs

    def is_prefix_of(self, other: "SortOrder", eq: Optional[AttributeEquivalence] = None) -> bool:
        """``self ≤ other``: *other* subsumes *self* (*self* is a prefix)."""
        if len(self) > len(other):
            return False
        return all(_same(a, b, eq) for a, b in zip(self._attrs, other._attrs))

    def is_strict_prefix_of(
        self, other: "SortOrder", eq: Optional[AttributeEquivalence] = None
    ) -> bool:
        """``self < other``: proper-prefix test."""
        return len(self) < len(other) and self.is_prefix_of(other, eq)

    def satisfies(self, required: "SortOrder", eq: Optional[AttributeEquivalence] = None) -> bool:
        """Whether a stream sorted by ``self`` meets requirement *required*.

        A guaranteed order satisfies a requirement iff the requirement is a
        prefix of the guarantee (sorting by ``(a, b, c)`` implies sorting by
        ``(a, b)``).
        """
        return required.is_prefix_of(self, eq)

    def concat(self, other: "SortOrder") -> "SortOrder":
        """``o1 + o2``: concatenation, skipping attributes already present."""
        seen = set(self._attrs)
        extra = tuple(a for a in other._attrs if a not in seen)
        return SortOrder(self._attrs + extra)

    def __add__(self, other: "SortOrder") -> "SortOrder":
        return self.concat(other)

    def minus(self, prefix: "SortOrder", eq: Optional[AttributeEquivalence] = None) -> "SortOrder":
        """``o1 − o2``: the suffix such that ``prefix + suffix == self``.

        Defined only when *prefix* ``≤`` *self*; raises :class:`ValueError`
        otherwise, mirroring the partial definition in the paper.
        """
        if not prefix.is_prefix_of(self, eq):
            raise ValueError(f"{prefix} is not a prefix of {self}")
        return SortOrder(self._attrs[len(prefix):])

    def restrict_prefix_to(self, attr_set: Iterable[str],
                           eq: Optional[AttributeEquivalence] = None) -> "SortOrder":
        """``o ∧ s``: longest prefix of ``self`` whose attributes all lie in *attr_set*.

        With an equivalence relation, membership is tested modulo
        equivalence classes (an order on ``l_suppkey`` counts as an order on
        ``ps_suppkey`` when the two are joined by equality).
        """
        attr_set = set(attr_set)
        prefix: list[str] = []
        for a in self._attrs:
            if a in attr_set or (eq is not None and any(eq.same(a, s) for s in attr_set)):
                prefix.append(a)
            else:
                break
        return SortOrder(prefix)

    def translate(self, mapping: dict[str, str]) -> "SortOrder":
        """Rename attributes through *mapping* (identity for absent keys)."""
        return SortOrder(tuple(mapping.get(a, a) for a in self._attrs))

    def project_onto(self, attr_set: Iterable[str],
                     eq: Optional[AttributeEquivalence] = None) -> "SortOrder":
        """Rewrite each attribute into a member of *attr_set* via *eq*.

        Returns the longest prefix of ``self`` rewritable into *attr_set*;
        used to express a guaranteed order in terms of another operator's
        column names.
        """
        attr_list = list(attr_set)
        out: list[str] = []
        for a in self._attrs:
            if a in attr_list:
                out.append(a)
                continue
            if eq is not None:
                mate = next((s for s in attr_list if eq.same(a, s)), None)
                if mate is not None:
                    out.append(mate)
                    continue
            break
        return SortOrder(out)


#: The empty sort order ``ε``.
EMPTY_ORDER = SortOrder()


def longest_common_prefix(o1: SortOrder, o2: SortOrder,
                          eq: Optional[AttributeEquivalence] = None) -> SortOrder:
    """``o1 ∧ o2``: the longest common prefix of two orders."""
    prefix: list[str] = []
    for a, b in zip(o1, o2):
        if _same(a, b, eq):
            prefix.append(a)
        else:
            break
    return SortOrder(prefix)


def prefix_in_set(order: SortOrder, attr_set: Iterable[str],
                  eq: Optional[AttributeEquivalence] = None) -> SortOrder:
    """``o ∧ s``: module-level alias of :meth:`SortOrder.restrict_prefix_to`."""
    return order.restrict_prefix_to(attr_set, eq)


def arbitrary_permutation(attr_set: Iterable[str]) -> SortOrder:
    """``⟨s⟩``: a deterministic "arbitrary" permutation of an attribute set.

    The paper leaves the choice free; for reproducibility we use the
    lexicographically smallest permutation.
    """
    return SortOrder(tuple(sorted(set(attr_set))))


def all_permutations(attr_set: Iterable[str]) -> list[SortOrder]:
    """``P(s)``: every permutation of *attr_set* (factorial — small sets only)."""
    return [SortOrder(p) for p in itertools.permutations(sorted(set(attr_set)))]


def extend_to_set(order: SortOrder, attr_set: Iterable[str]) -> SortOrder:
    """Extend *order* with an arbitrary permutation of the attributes of
    *attr_set* it does not already contain (the ``o' + ⟨S − attrs(o')⟩``
    construction used throughout Section 5)."""
    remaining = set(attr_set) - order.attrs()
    return order.concat(arbitrary_permutation(remaining))


def order_key(rows_schema_positions: Sequence[int]):
    """Build a tuple-extraction key function for sorting rows (tuples) by the
    given column positions.  Shared by the executor and tests."""
    positions = tuple(rows_schema_positions)

    def key(row: tuple) -> tuple:
        return tuple(row[i] for i in positions)

    return key
