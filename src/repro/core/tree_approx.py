"""2-approximation for sort orders on a binary tree (Section 4.2, Fig. 5).

Problem 1 on general binary trees is NP-hard (Theorem 4.1); the paper's
approximation splits the tree's edges by level parity:

* ``P_odd`` — edges whose lower endpoint is at odd depth,
* ``P_even`` — edges whose lower endpoint is at even depth.

Within one parity class every node is incident to either its parent edge
or its child edges (never both), so the classes decompose into vertex-
disjoint *paths*, each solvable exactly by the :func:`~repro.core.path_order.path_order`
DP.  Because the optimum's benefit splits across the two classes,
``max(ben(S_odd), ben(S_even)) ≥ OPT/2``.

The module also provides a brute-force exact solver for small instances
(tests verify the ½ bound empirically) and the benefit evaluator used by
phase-2 plan refinement.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Optional, Sequence

from .path_order import path_order
from .sort_order import SortOrder, arbitrary_permutation, longest_common_prefix


@dataclass
class OrderTreeNode:
    """A node of an order-selection instance (e.g. one merge-join).

    ``attrs`` is the attribute set to permute (the join attribute set, or
    the free attributes during phase-2 refinement).  ``payload`` lets
    callers attach the plan node being refined.
    """

    node_id: int
    attrs: frozenset[str]
    children: list["OrderTreeNode"] = field(default_factory=list)
    payload: object = None

    def add_child(self, child: "OrderTreeNode") -> "OrderTreeNode":
        if len(self.children) >= 2:
            raise ValueError("order tree is binary")
        self.children.append(child)
        return child

    def walk(self) -> Iterator["OrderTreeNode"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def edges(self) -> Iterator[tuple["OrderTreeNode", "OrderTreeNode"]]:
        for child in self.children:
            yield (self, child)
            yield from child.edges()


def build_tree(spec, _counter: Optional[list[int]] = None) -> OrderTreeNode:
    """Build an :class:`OrderTreeNode` tree from a nested spec.

    Spec grammar: ``(attrs, child_spec, child_spec)`` /
    ``(attrs, child_spec)`` / ``attrs`` where *attrs* is any iterable of
    attribute names.  Example::

        build_tree(({"a","b"}, {"a","c"}, ({"b"}, {"b","d"})))
    """
    counter = _counter if _counter is not None else [0]

    def is_spec(x) -> bool:
        return (isinstance(x, tuple) and len(x) in (2, 3)
                and not all(isinstance(e, str) for e in x))

    if is_spec(spec):
        attrs, *children = spec
        node = OrderTreeNode(counter[0], frozenset(attrs))
        counter[0] += 1
        for child_spec in children:
            node.add_child(build_tree(child_spec, counter))
        return node
    node = OrderTreeNode(counter[0], frozenset(spec))
    counter[0] += 1
    return node


def tree_benefit(root: OrderTreeNode,
                 assignment: Dict[int, SortOrder]) -> int:
    """Problem 1 objective: Σ over tree edges of |lcp(p_parent, p_child)|."""
    total = 0
    for parent, child in root.edges():
        total += len(longest_common_prefix(assignment[parent.node_id],
                                           assignment[child.node_id]))
    return total


@dataclass(frozen=True)
class TreeApproxResult:
    assignment: Dict[int, SortOrder]
    benefit: int
    chosen_parity: str
    odd_benefit: int
    even_benefit: int


def _parity_paths(root: OrderTreeNode, parity: int) -> list[list[OrderTreeNode]]:
    """Decompose the chosen parity class of edges into node paths.

    Each component is ``child1 — parent — child2`` (or a single edge):
    a node keeps either its parent edge or its child edges in one class,
    so walking from each even/odd "center" suffices.
    """
    depths: Dict[int, int] = {root.node_id: 0}
    for parent, child in root.edges():
        depths[child.node_id] = depths[parent.node_id] + 1

    adjacency: Dict[int, list[OrderTreeNode]] = {}
    nodes: Dict[int, OrderTreeNode] = {n.node_id: n for n in root.walk()}
    selected: list[tuple[OrderTreeNode, OrderTreeNode]] = []
    for parent, child in root.edges():
        if depths[child.node_id] % 2 == parity:
            selected.append((parent, child))
            adjacency.setdefault(parent.node_id, []).append(child)
            adjacency.setdefault(child.node_id, []).append(parent)

    paths: list[list[OrderTreeNode]] = []
    visited: set[int] = set()
    for node_id, neighbours in adjacency.items():
        if node_id in visited or len(neighbours) > 1:
            continue
        # Endpoint of a path: walk to the other end.
        path = [nodes[node_id]]
        visited.add(node_id)
        current = node_id
        while True:
            nxt = [n for n in adjacency[current] if n.node_id not in visited]
            if not nxt:
                break
            path.append(nxt[0])
            visited.add(nxt[0].node_id)
            current = nxt[0].node_id
        paths.append(path)
    return paths


def approximate_tree_orders(root: OrderTreeNode) -> TreeApproxResult:
    """The paper's 2-approximation: solve odd- and even-level path sets
    exactly, keep the better, fill uncovered nodes arbitrarily."""
    solutions: dict[int, tuple[int, Dict[int, SortOrder]]] = {}
    for parity in (0, 1):
        assignment: Dict[int, SortOrder] = {}
        total = 0
        for path in _parity_paths(root, parity):
            result = path_order([n.attrs for n in path])
            total += result.benefit
            for node, perm in zip(path, result.permutations):
                assignment[node.node_id] = perm
        solutions[parity] = (total, assignment)

    even_benefit, odd_benefit = solutions[0][0], solutions[1][0]
    parity = 1 if odd_benefit >= even_benefit else 0
    _, assignment = solutions[parity]
    for node in root.walk():
        if node.node_id not in assignment:
            assignment[node.node_id] = arbitrary_permutation(node.attrs)
    return TreeApproxResult(
        assignment=assignment,
        benefit=tree_benefit(root, assignment),
        chosen_parity="odd" if parity == 1 else "even",
        odd_benefit=odd_benefit,
        even_benefit=even_benefit,
    )


def brute_force_tree_orders(root: OrderTreeNode,
                            limit: int = 2_000_000) -> TreeApproxResult:
    """Exact optimum by exhaustive enumeration (small instances only)."""
    nodes = list(root.walk())
    perm_lists = [list(itertools.permutations(sorted(n.attrs))) for n in nodes]
    size = 1
    for pl in perm_lists:
        size *= max(1, len(pl))
        if size > limit:
            raise ValueError(f"instance too large for brute force ({size}+ combos)")

    best_val = -1
    best_assignment: Dict[int, SortOrder] = {}
    for combo in itertools.product(*perm_lists):
        assignment = {n.node_id: SortOrder(p) for n, p in zip(nodes, combo)}
        val = tree_benefit(root, assignment)
        if val > best_val:
            best_val, best_assignment = val, assignment
    return TreeApproxResult(best_assignment, best_val, "exact", -1, -1)
