"""Interesting-order selection strategies (Section 5.2.1 and Experiment B3).

Each strategy answers one question: *which permutations of a flexible
attribute set should the optimizer try* for a merge join, sort-based
aggregate, merge union or duplicate elimination?  The five variants the
paper evaluates in Figure 15:

===========  =====================================================================
``PYRO``     one arbitrary permutation (the strawman baseline)
``PYRO-P``   PostgreSQL's heuristic: for each of the *n* attributes, one order
             starting with that attribute, remainder arbitrary
``PYRO-O``   the paper's approach: favorable orders of the inputs restricted to
             the attribute set, plus the required output order's prefix, pruned
             for redundancy and extended to full permutations
``PYRO-O−``  PYRO-O's candidate orders, but the optimizer is denied partial sort
             enforcers (exact-match only)
``PYRO-E``   all n! permutations (exhaustive; optimal reference)
===========  =====================================================================

``PYRO-O−`` differs from ``PYRO-O`` only in the optimizer flag, so this
module exposes four strategy classes plus :func:`make_strategy` which
also wires that flag.  :class:`ForcedOrderStrategy` overlays explicit
permutations on chosen join nodes — the mechanism phase-2 refinement
uses to re-plan with reworked orders.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ..logical.algebra import Distinct, GroupBy, Join, LogicalExpr, Union
from ..logical.fds import FDSet
from .favorable import FavorableOrders
from .sort_order import (
    AttributeEquivalence,
    EMPTY_ORDER,
    SortOrder,
    arbitrary_permutation,
)

#: Hard cap for exhaustive enumeration: 8! = 40,320 subgoals is already
#: far beyond anything interactive (Figure 16's PYRO-E curve).
EXHAUSTIVE_LIMIT = 8


@dataclass
class OrderContext:
    """Everything a strategy may consult."""

    favorable: FavorableOrders
    fds: FDSet
    eq: AttributeEquivalence

    def required_prefix(self, required: SortOrder,
                        attrs: Iterable[str]) -> SortOrder:
        return required.restrict_prefix_to(attrs, self.eq)


class OrderStrategy:
    """Base interface.  All returned orders use canonical (left-side /
    output-schema) attribute names and are full permutations of the
    flexible attribute set."""

    name = "abstract"

    def join_orders(self, octx: OrderContext, join: Join,
                    required: SortOrder) -> list[SortOrder]:
        raise NotImplementedError

    def group_orders(self, octx: OrderContext, group: GroupBy,
                     columns: Sequence[str], required: SortOrder) -> list[SortOrder]:
        raise NotImplementedError

    def set_orders(self, octx: OrderContext, expr: LogicalExpr,
                   columns: Sequence[str], required: SortOrder) -> list[SortOrder]:
        """Orders for Distinct/Union (flexible over all columns)."""
        return self.group_orders(octx, expr, columns, required)  # type: ignore[arg-type]

    # -- shared helpers ---------------------------------------------------------------
    @staticmethod
    def _join_attr_names(join: Join) -> list[str]:
        return [l for l, _ in join.predicate.pairs]

    @staticmethod
    def _extend_all(prefixes: Iterable[SortOrder], attrs: Sequence[str],
                    eq: Optional[AttributeEquivalence]) -> list[SortOrder]:
        """Step 3 of computing I(e, o): extend to |S| with arbitrary tails."""
        out: list[SortOrder] = []
        for prefix in prefixes:
            rest = [a for a in attrs
                    if not any(eq.same(a, p) if eq else a == p for p in prefix)]
            candidate = prefix.concat(arbitrary_permutation(rest))
            if candidate not in out:
                out.append(candidate)
        return out

    @staticmethod
    def _drop_redundant(orders: list[SortOrder],
                        eq: Optional[AttributeEquivalence]) -> list[SortOrder]:
        """Step 2: drop o1 when some strictly longer o2 subsumes it
        (o1 < o2); also dedupe."""
        kept: list[SortOrder] = []
        for o in orders:
            if any(o.is_strict_prefix_of(other, eq) for other in orders):
                continue
            if o not in kept:
                kept.append(o)
        return kept


class ArbitraryOrderStrategy(OrderStrategy):
    """PYRO: a single deterministic-arbitrary permutation."""

    name = "pyro"

    def join_orders(self, octx, join, required):
        return [arbitrary_permutation(self._join_attr_names(join))]

    def group_orders(self, octx, group, columns, required):
        return [arbitrary_permutation(columns)]


class PostgresHeuristicStrategy(OrderStrategy):
    """PYRO-P: one order per attribute, that attribute leading.

    "For each of the n attributes involved in the join condition, a sort
    order beginning with that attribute is chosen; in each order the
    remaining n−1 attributes are ordered arbitrarily."
    """

    name = "pyro-p"

    @staticmethod
    def _leading(attrs: Sequence[str]) -> list[SortOrder]:
        out = []
        for a in attrs:
            rest = arbitrary_permutation([b for b in attrs if b != a])
            out.append(SortOrder((a,)).concat(rest))
        return out or [EMPTY_ORDER]

    def join_orders(self, octx, join, required):
        return self._leading(self._join_attr_names(join))

    def group_orders(self, octx, group, columns, required):
        return self._leading(list(columns))


class FavorableOrderStrategy(OrderStrategy):
    """PYRO-O: candidate orders from input favorable orders (Section 5.2.1).

    For goal ``(e = el ⋈ er, o)`` with join attribute set S:

    1. ``T(e, o) = afm(el, S) ∪ afm(er, S) ∪ {o ∧ S}``
    2. drop redundant orders (``o1 ≤ o2`` ⇒ drop ``o1``)
    3. extend every order to length |S| with an arbitrary tail.
    """

    name = "pyro-o"

    @staticmethod
    def _canonicalize(order: SortOrder, targets: Sequence[str],
                      eq: AttributeEquivalence) -> SortOrder:
        """Rewrite each attribute to the member of *targets* in its
        equivalence class (favorable orders may carry any side's names,
        including columns merged in by earlier joins)."""
        out: list[str] = []
        for a in order:
            if a in targets:
                name = a
            else:
                name = next((t for t in targets if eq.same(a, t)), None)
                if name is None:
                    break
            if name not in out:
                out.append(name)
        return SortOrder(out)

    def join_orders(self, octx, join, required):
        pairs = list(join.predicate.pairs)
        attrs = [l for l, _ in pairs]
        side_attrs = {c for pair in pairs for c in pair}

        candidates: list[SortOrder] = []
        for source in (join.left, join.right):
            for o in octx.favorable.afm_on(source, side_attrs):
                candidates.append(self._canonicalize(o, attrs, octx.eq))
        req = self._canonicalize(
            octx.required_prefix(required, side_attrs), attrs, octx.eq)
        if req:
            candidates.append(req)
        candidates = self._drop_redundant([c for c in candidates if c], octx.eq)
        orders = self._extend_all(candidates, attrs, octx.eq)
        return orders or [arbitrary_permutation(attrs)]

    def group_orders(self, octx, group, columns, required):
        child = group.children[0]
        candidates = [self._canonicalize(o, list(columns), octx.eq)
                      for o in octx.favorable.afm_on(child, set(columns))]
        req = self._canonicalize(
            octx.required_prefix(required, set(columns)), list(columns), octx.eq)
        if req:
            candidates.append(req)
        candidates = self._drop_redundant([c for c in candidates if c], octx.eq)
        orders = self._extend_all(candidates, list(columns), octx.eq)
        return orders or [arbitrary_permutation(columns)]


class ExhaustiveOrderStrategy(OrderStrategy):
    """PYRO-E: every permutation (reference optimum; factorial)."""

    name = "pyro-e"

    def __init__(self, limit: int = EXHAUSTIVE_LIMIT) -> None:
        self.limit = limit

    def _all(self, attrs: Sequence[str]) -> list[SortOrder]:
        attrs = sorted(attrs)
        if len(attrs) > self.limit:
            raise ValueError(
                f"PYRO-E asked to enumerate {len(attrs)}! permutations; "
                f"limit is {self.limit}! — use PYRO-O for larger sets")
        return [SortOrder(p) for p in itertools.permutations(attrs)]

    def join_orders(self, octx, join, required):
        return self._all(self._join_attr_names(join))

    def group_orders(self, octx, group, columns, required):
        return self._all(list(columns))


class ForcedOrderStrategy(OrderStrategy):
    """Overlay explicit permutations for selected nodes (phase-2 re-plan).

    Falls back to *base* wherever no forced order is registered.  Keys
    are logical expressions (Join/GroupBy/...), values full permutations
    in canonical names.
    """

    name = "forced"

    def __init__(self, base: OrderStrategy,
                 forced: dict[LogicalExpr, SortOrder]) -> None:
        self.base = base
        self.forced = dict(forced)

    def join_orders(self, octx, join, required):
        forced = self.forced.get(join)
        if forced is not None:
            return [forced]
        return self.base.join_orders(octx, join, required)

    def group_orders(self, octx, group, columns, required):
        forced = self.forced.get(group)
        if forced is not None:
            return [forced]
        return self.base.group_orders(octx, group, columns, required)


#: Registry used by the optimizer's constructor and the benchmarks.
STRATEGY_VARIANTS = {
    "pyro": (ArbitraryOrderStrategy, True),
    "pyro-p": (PostgresHeuristicStrategy, True),
    "pyro-o": (FavorableOrderStrategy, True),
    "pyro-o-": (FavorableOrderStrategy, False),  # no partial sort enforcers
    "pyro-e": (ExhaustiveOrderStrategy, True),
}


def make_strategy(name: str) -> tuple[OrderStrategy, bool]:
    """Return ``(strategy instance, partial_sort_enabled)`` for a variant
    name as used in the paper's Figure 15."""
    try:
        cls, partial = STRATEGY_VARIANTS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; have {sorted(STRATEGY_VARIANTS)}"
        ) from None
    return cls(), partial
