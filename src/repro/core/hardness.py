"""NP-hardness artefacts for Problem 1 (Section 4.1, Theorem 4.1).

The paper reduces SUM-CUT (graph layout, [DPS02]) to the sort-order
selection problem.  The pipeline formalised here:

* **Problem 2 (SUM-CUT)** — number the vertices ``1..m`` minimising
  ``Σ c_i`` where ``c_i`` counts vertices numbered ``≤ i`` adjacent to a
  vertex numbered ``> i``.
* **Problem 3** — equivalent complement form: maximise ``Σ q_i`` where
  ``q_i`` is the number of vertices adjacent to *all* of the first *i*
  numbered vertices.
* **Problem 1 instance** — a caterpillar binary tree: a spine of ``m``
  internal nodes each carrying attribute set ``V(G) ∪ L`` (``L`` a large
  disjoint pad set), plus one leaf per spine node ``v_i`` carrying the
  neighbourhood of graph vertex ``u_i``.

With ``L`` large enough the spine nodes are forced to share one
permutation; its prefix of graph vertices *is* a numbering, and the leaf
benefits sum to the Problem 3 objective.  These constructions let the
test suite verify the reduction end-to-end on small graphs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Sequence

from .sort_order import SortOrder, longest_common_prefix
from .tree_approx import OrderTreeNode, brute_force_tree_orders, tree_benefit

Graph = Mapping[str, Iterable[str]]


def _normalize(graph: Graph) -> dict[str, frozenset[str]]:
    adj = {v: frozenset(ns) for v, ns in graph.items()}
    for v, ns in adj.items():
        for u in ns:
            if u not in adj or v not in adj[u]:
                raise ValueError(f"graph not symmetric at edge ({v}, {u})")
            if u == v:
                raise ValueError(f"self-loop at {v}")
    return adj


def sum_cut_objective(graph: Graph, numbering: Sequence[str]) -> int:
    """Problem 2: Σ c_i for the given vertex numbering (to MINIMISE)."""
    adj = _normalize(graph)
    order = list(numbering)
    if sorted(order) != sorted(adj):
        raise ValueError("numbering must enumerate every vertex exactly once")
    total = 0
    placed: set[str] = set()
    for i, v in enumerate(order):
        placed.add(v)
        later = set(order[i + 1:])
        c_i = sum(1 for w in placed if adj[w] & later)
        total += c_i
    return total


def problem3_objective(graph: Graph, numbering: Sequence[str]) -> int:
    """Problem 3: Σ q_i — vertices adjacent to all of the first *i* (to MAXIMISE)."""
    adj = _normalize(graph)
    order = list(numbering)
    total = 0
    for i in range(1, len(order) + 1):
        prefix = order[:i]
        q_i = sum(1 for w in adj
                  if all(w in adj[u] for u in prefix))
        total += q_i
    return total


def best_numbering(graph: Graph) -> tuple[tuple[str, ...], int]:
    """Exhaustive Problem 3 optimum (small graphs only)."""
    adj = _normalize(graph)
    best_val, best_order = -1, None
    for perm in itertools.permutations(sorted(adj)):
        val = problem3_objective(adj, perm)
        if val > best_val:
            best_val, best_order = val, perm
    return best_order, best_val  # type: ignore[return-value]


@dataclass(frozen=True)
class ReductionInstance:
    """The Problem 1 instance produced from a graph."""

    root: OrderTreeNode
    spine: tuple[OrderTreeNode, ...]
    leaves: tuple[OrderTreeNode, ...]
    graph_vertices: tuple[str, ...]
    pad_attrs: tuple[str, ...]

    @property
    def spine_full_benefit(self) -> int:
        """Benefit of one spine edge when both endpoints fully align."""
        return len(self.graph_vertices) + len(self.pad_attrs)


def reduction_from_graph(graph: Graph, pad_size: int | None = None) -> ReductionInstance:
    """Construct the caterpillar tree of the Theorem 4.1 reduction.

    ``pad_size`` is |L|; the proof wants it "arbitrarily large" — large
    enough that breaking spine alignment can never pay.  ``m·n`` (graph
    vertices × spine edges) always suffices; tests may pass smaller
    values to probe the boundary.
    """
    adj = _normalize(graph)
    vertices = tuple(sorted(adj))
    m = len(vertices)
    if m == 0:
        raise ValueError("graph must be non-empty")
    if pad_size is None:
        pad_size = max(1, m * m)
    pad = tuple(f"_pad{i}" for i in range(pad_size))
    internal_attrs = frozenset(vertices) | frozenset(pad)

    spine: list[OrderTreeNode] = []
    leaves: list[OrderTreeNode] = []
    next_id = 0
    for i, u in enumerate(vertices):
        node = OrderTreeNode(next_id, internal_attrs)
        next_id += 1
        if spine:
            spine[-1].add_child(node)
        spine.append(node)
    for i, u in enumerate(vertices):
        leaf = OrderTreeNode(next_id, frozenset(adj[u]) if adj[u] else frozenset({f"_iso_{u}"}))
        next_id += 1
        spine[i].add_child(leaf)
        leaves.append(leaf)
    return ReductionInstance(spine[0], tuple(spine), tuple(leaves), vertices, pad)


def assignment_from_numbering(instance: ReductionInstance,
                              numbering: Sequence[str]) -> Dict[int, SortOrder]:
    """Lift a Problem 3 numbering to a Problem 1 permutation assignment.

    Every spine node takes the permutation ``numbering + pad``; every
    leaf takes its best response: the prefix of the spine permutation
    contained in its attribute set, extended arbitrarily.
    """
    spine_perm = SortOrder(tuple(numbering) + instance.pad_attrs)
    assignment: Dict[int, SortOrder] = {}
    for node in instance.spine:
        assignment[node.node_id] = spine_perm
    for leaf in instance.leaves:
        prefix = spine_perm.restrict_prefix_to(leaf.attrs)
        rest = tuple(sorted(leaf.attrs - prefix.attrs()))
        assignment[leaf.node_id] = SortOrder(prefix.as_tuple + rest)
    return assignment


def benefit_from_numbering(instance: ReductionInstance,
                           graph: Graph, numbering: Sequence[str]) -> int:
    """Tree benefit realised by a numbering:
    ``(m-1)·(n+|L|) + Σ q_i`` (the reduction's forward direction)."""
    assignment = assignment_from_numbering(instance, numbering)
    return tree_benefit(instance.root, assignment)


def numbering_from_assignment(instance: ReductionInstance,
                              assignment: Dict[int, SortOrder]) -> tuple[str, ...]:
    """Extract a numbering from any Problem 1 solution (reverse direction).

    Takes the first spine node's permutation and reads off graph vertices
    in order of first appearance, appending missing vertices at the end.
    """
    vertices = set(instance.graph_vertices)
    perm = assignment[instance.spine[0].node_id]
    seen: list[str] = [a for a in perm if a in vertices]
    seen.extend(sorted(vertices - set(seen)))
    return tuple(seen)
