"""Favorable orders (Section 5.1).

``ford(e)`` — the set of sort orders obtainable on ``e``'s result more
cheaply than by a full sort — is defined through the *benefit*:

    benefit(o, e) = cbp(e, ε) + coe(e, ε, o) − cbp(e, o)
    ford(e)       = { o : benefit(o, e) > 0 }

``ford-min(e)`` prunes orders reachable from a retained order by pure
prefix extension/truncation at equal cost.  Both are defined here for
completeness (and exercised in tests via the optimizer's ``cbp``), but —
as the paper observes — computing them exactly requires optimizing the
expression first.  The practical tool is :class:`FavorableOrders`,
the bottom-up **approximate minimal favorable orders** ``afm(e)`` of
Section 5.1.2, computed from the catalog in a single pass of the query
tree with only longest-common-prefix work per node.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from ..logical.algebra import (
    Annotator,
    BaseRelation,
    Compute,
    Distinct,
    GroupBy,
    Join,
    Limit,
    LogicalExpr,
    OrderBy,
    Project,
    Select,
    Union,
)
from ..storage.catalog import Catalog
from .sort_order import (
    AttributeEquivalence,
    EMPTY_ORDER,
    SortOrder,
    arbitrary_permutation,
)

#: Safety cap on |afm(e)| — the paper argues the set stays tiny in
#: practice ("typically m ≤ 2"); the cap only guards degenerate catalogs.
MAX_AFM_ORDERS = 16


class FavorableOrders:
    """Bottom-up ``afm`` computation with per-node memoisation."""

    def __init__(self, catalog: Catalog, annotator: Annotator) -> None:
        self.catalog = catalog
        self.annotator = annotator
        self.eq = annotator.eq
        self._memo: dict[LogicalExpr, tuple[SortOrder, ...]] = {}

    # -- public API -----------------------------------------------------------------
    def afm(self, expr: LogicalExpr) -> tuple[SortOrder, ...]:
        """Approximate minimal favorable orders of *expr*."""
        cached = self._memo.get(expr)
        if cached is None:
            cached = self._dedupe(self._compute(expr))
            self._memo[expr] = cached
        return cached

    def afm_on(self, expr: LogicalExpr, attr_set: Iterable[str]) -> tuple[SortOrder, ...]:
        """``afm(e, s) = { o ∧ s : o ∈ afm(e) }`` — favorable orders
        restricted to prefixes over *attr_set* (equivalence-aware)."""
        attrs = list(attr_set)
        restricted = [o.restrict_prefix_to(attrs, self.eq) for o in self.afm(expr)]
        return self._dedupe(o for o in restricted if o)

    # -- per-node rules (Section 5.1.2) ------------------------------------------------
    def _compute(self, expr: LogicalExpr) -> list[SortOrder]:
        if isinstance(expr, BaseRelation):
            return self._base_relation(expr)
        if isinstance(expr, (Select, Limit)):
            return list(self.afm(expr.children[0]))
        if isinstance(expr, Compute):
            return list(self.afm(expr.child))
        if isinstance(expr, Project):
            return [o.restrict_prefix_to(expr.columns)
                    for o in self.afm(expr.child)]
        if isinstance(expr, Join):
            return self._join(expr)
        if isinstance(expr, GroupBy):
            return self._flexible_single_input(
                expr.child, list(expr.group_columns))
        if isinstance(expr, Distinct):
            schema = self.annotator.schema_of(expr)
            return self._flexible_single_input(expr.child, list(schema.names))
        if isinstance(expr, Union):
            return self._union(expr)
        if isinstance(expr, OrderBy):
            return self._dedupe([expr.order, *self.afm(expr.child)])
        raise TypeError(f"afm: unknown logical node {type(expr).__name__}")

    def _base_relation(self, expr: BaseRelation) -> list[SortOrder]:
        """Rule 1: the clustering order plus every covering index key."""
        table = self.catalog.table(expr.table_name)
        used = self.annotator.used_attrs(expr.table_name)
        orders: list[SortOrder] = []
        if table.clustering_order:
            orders.append(table.clustering_order)
        for index in self.catalog.indexes_of(expr.table_name):
            if index.covers(used):
                orders.append(index.key)
        return orders

    def _join(self, expr: Join) -> list[SortOrder]:
        """Rule 4: input orders pass through (NL join propagates the
        outer's order); additionally, each input favorable order's prefix
        within the join attribute set is extended to a full permutation
        (merge join propagates the chosen join order)."""
        pairs = list(expr.predicate.pairs)
        side_attrs = {c for pair in pairs for c in pair}
        t = list(self.afm(expr.left)) + list(self.afm(expr.right))
        result = list(t)
        for o in [*t, EMPTY_ORDER]:
            prefix = o.restrict_prefix_to(side_attrs, self.eq)
            result.append(self._extend_over_pairs(prefix, pairs))
        return result

    def _extend_over_pairs(self, prefix: SortOrder,
                           pairs: list[tuple[str, str]]) -> SortOrder:
        """``(o' ∧ S) + ⟨S − attrs(o' ∧ S)⟩`` with S as canonical (left)
        names, honouring equivalence between the two sides."""
        remaining = []
        for l, r in pairs:
            covered = any(self.eq.same(a, l) or self.eq.same(a, r) for a in prefix)
            if not covered:
                remaining.append(l)
        return prefix.concat(arbitrary_permutation(remaining))

    def _flexible_single_input(self, child: LogicalExpr,
                               columns: list[str]) -> list[SortOrder]:
        """Rule 5 (GroupBy et al.): extend each input favorable order's
        prefix over the grouping columns to a full permutation."""
        result: list[SortOrder] = []
        for o in [*self.afm(child), EMPTY_ORDER]:
            prefix = o.restrict_prefix_to(columns, self.eq)
            rest = [c for c in columns
                    if not any(self.eq.same(c, a) for a in prefix)]
            result.append(prefix.concat(arbitrary_permutation(rest)))
        return result

    def _union(self, expr: Union) -> list[SortOrder]:
        left_schema = self.annotator.schema_of(expr.left)
        right_schema = self.annotator.schema_of(expr.right)
        rename = dict(zip(right_schema.names, left_schema.names))
        t = list(self.afm(expr.left))
        t += [o.translate(rename) for o in self.afm(expr.right)]
        columns = list(left_schema.names)
        result: list[SortOrder] = []
        for o in [*t, EMPTY_ORDER]:
            prefix = o.restrict_prefix_to(columns, self.eq)
            rest = [c for c in columns if c not in prefix.attrs()]
            result.append(prefix.concat(arbitrary_permutation(rest)))
        return result

    # -- helpers --------------------------------------------------------------------
    @staticmethod
    def _dedupe(orders: Iterable[SortOrder]) -> tuple[SortOrder, ...]:
        seen: list[SortOrder] = []
        for o in orders:
            if o and o not in seen:
                seen.append(o)
        return tuple(seen[:MAX_AFM_ORDERS])


def benefit(order: SortOrder, expr: LogicalExpr,
            cbp: Callable[[LogicalExpr, SortOrder], float],
            coe: Callable[[LogicalExpr, SortOrder, SortOrder], float]) -> float:
    """Definition 5.1: ``benefit(o, e) = cbp(e, ε) + coe(e, ε, o) − cbp(e, o)``.

    *cbp* and *coe* are injected (normally the optimizer's best-plan cost
    and enforcement cost) so the definition stays independent of any one
    optimizer instance; used by tests to validate afm's approximation.
    """
    return (cbp(expr, EMPTY_ORDER) + coe(expr, EMPTY_ORDER, order)
            - cbp(expr, order))


def ford_min(orders_with_costs: dict[SortOrder, float],
             coe_from: Callable[[SortOrder, SortOrder], float]) -> set[SortOrder]:
    """Exact ``ford-min`` over an explicitly enumerated ``ford`` set.

    ``orders_with_costs`` maps each favorable order to ``cbp(e, o)``;
    *coe_from(o1, o2)* is the enforcement cost between orders.  Applies
    conditions (2) and (3) of Section 5.1.1: drop ``o`` when a prefix
    reaches it at no extra cost (cond. 2), or when a retained extension
    costs no more (cond. 3).  Exponential inputs are the caller's
    responsibility — this is a specification-level artefact for tests
    and small instances.
    """
    cost = orders_with_costs
    # Longest first, so condition 3 can consult already-retained
    # extensions when judging their prefixes.
    ordering = sorted(cost, key=lambda o: (-len(o), cost[o]))
    kept: set[SortOrder] = set()
    for o in ordering:
        covered = False
        for o2 in cost:
            if o2 == o:
                continue
            if o2.is_strict_prefix_of(o) and (
                    cost[o2] + coe_from(o2, o) <= cost[o]):
                covered = True  # condition 2
                break
            if o.is_strict_prefix_of(o2) and o2 in kept and cost[o2] <= cost[o]:
                covered = True  # condition 3
                break
        if not covered:
            kept.add(o)
    return kept
