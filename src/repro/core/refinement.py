"""Phase-2 plan refinement (Section 5.2.2).

After the cost-based search (phase 1) fixes a best plan, the
permutations chosen for *free attributes* — join attributes that were
not part of any input favorable order and were therefore ordered
arbitrarily — are reworked so adjacent merge joins share the longest
possible common prefixes.

For each merge-join node ``v_i`` with chosen permutation ``p_i``:

* ``q_i`` — the input favorable order with the longest ``|p_i ∧ q_i|``;
* ``f_i = attrs(p_i − (p_i ∧ q_i))`` — the free attributes.

A binary tree over the plan's merge-join nodes (intermediate operators
contracted) with node sets ``f_i`` is handed to the 2-approximation of
Section 4.2; each join's new permutation is ``(p_i ∧ q_i)`` followed by
the reworked free-attribute order.  The plan is then re-optimized with
those permutations forced, and kept only if its estimated cost does not
regress — refinement is sound by construction.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from ..logical.algebra import Annotator, Join, LogicalExpr
from .favorable import FavorableOrders
from .sort_order import EMPTY_ORDER, SortOrder, longest_common_prefix
from .tree_approx import OrderTreeNode, approximate_tree_orders

if TYPE_CHECKING:  # pragma: no cover
    from ..optimizer.plans import PhysicalPlan
    from ..optimizer.volcano import Optimizer


def merge_join_permutation(plan_node: "PhysicalPlan") -> SortOrder:
    """The key permutation a merge-join plan node was built with.

    Read from the predicate's pair order (position *i* of the sort keys
    is pair *i*), not from ``plan_node.order`` — a FULL OUTER merge join
    guarantees no output order (NULL-padded left keys), yet still has a
    permutation phase-2 refinement can rework.
    """
    predicate = plan_node.arg("predicate")
    if predicate is not None:
        return SortOrder(predicate.left_columns)
    return plan_node.order


def collect_merge_join_tree(plan: "PhysicalPlan") -> Optional[OrderTreeNode]:
    """Contract a physical plan to its merge-join skeleton.

    Returns the root :class:`OrderTreeNode` (payload = plan node), or
    ``None`` when the plan has fewer than two merge joins or its join
    topology is not binary after contraction (e.g. unions of joins).
    """
    counter = [0]

    def topmost_joins(node: "PhysicalPlan") -> list["PhysicalPlan"]:
        if node.op == "MergeJoin":
            return [node]
        found: list["PhysicalPlan"] = []
        for child in node.children:
            found.extend(topmost_joins(child))
        return found

    def build(plan_node: "PhysicalPlan") -> Optional[OrderTreeNode]:
        tree_node = OrderTreeNode(counter[0],
                                  frozenset(merge_join_permutation(plan_node)),
                                  payload=plan_node)
        counter[0] += 1
        child_joins: list["PhysicalPlan"] = []
        for child in plan_node.children:
            child_joins.extend(topmost_joins(child))
        if len(child_joins) > 2:
            return None
        for cj in child_joins:
            sub = build(cj)
            if sub is None:
                return None
            tree_node.add_child(sub)
        return tree_node

    roots = topmost_joins(plan)
    if len(roots) != 1:
        return None
    root = build(roots[0])
    if root is None or sum(1 for _ in root.walk()) < 2:
        return None
    return root


def free_attributes(plan_node: "PhysicalPlan", favorable: FavorableOrders,
                    eq) -> tuple[SortOrder, frozenset[str]]:
    """``(p_i ∧ q_i, f_i)`` for one merge-join plan node."""
    logical: Optional[Join] = plan_node.arg("logical")
    perm: SortOrder = merge_join_permutation(plan_node)
    best_prefix = EMPTY_ORDER
    if logical is not None:
        for source in (logical.left, logical.right):
            for q in favorable.afm(source):
                prefix = longest_common_prefix(perm, q, eq)
                if len(prefix) > len(best_prefix):
                    best_prefix = prefix
    free = perm.attrs() - best_prefix.attrs()
    return best_prefix, frozenset(free)


def refine_plan(optimizer: "Optimizer", expr: LogicalExpr, required: SortOrder,
                plan: "PhysicalPlan", parallelism: int = 1) -> "PhysicalPlan":
    """Apply phase-2 refinement; returns the original plan unless the
    reworked permutations strictly improve the estimated cost.

    *parallelism* is threaded through to the re-optimization so the
    refined plan competes under the same shard-aware enforcer placement
    as the phase-1 plan it challenges.
    """
    skeleton = collect_merge_join_tree(plan)
    if skeleton is None:
        return plan

    annotator = Annotator(optimizer.catalog, expr)
    favorable = FavorableOrders(optimizer.catalog, annotator)
    eq = annotator.eq

    fixed_prefixes: dict[int, SortOrder] = {}
    free_sets: dict[int, frozenset[str]] = {}
    logical_of: dict[int, LogicalExpr] = {}
    any_free = False
    for node in skeleton.walk():
        plan_node: "PhysicalPlan" = node.payload  # type: ignore[assignment]
        prefix, free = free_attributes(plan_node, favorable, eq)
        fixed_prefixes[node.node_id] = prefix
        free_sets[node.node_id] = free
        logical = plan_node.arg("logical")
        if logical is not None:
            logical_of[node.node_id] = logical
        if free:
            any_free = True
        node.attrs = free  # rework only the free attributes
    if not any_free:
        return plan

    approx = approximate_tree_orders(skeleton)
    forced: dict[LogicalExpr, SortOrder] = {}
    for node in skeleton.walk():
        logical = logical_of.get(node.node_id)
        if logical is None:
            continue
        new_perm = fixed_prefixes[node.node_id].concat(
            approx.assignment[node.node_id])
        forced[logical] = new_perm

    if not forced:
        return plan
    refined = optimizer.optimize_with_forced_orders(expr, required, forced,
                                                    parallelism=parallelism)
    return refined if refined.total_cost < plan.total_cost else plan
