"""The paper's core contribution: sort-order reasoning and selection.

Submodules:

* :mod:`.sort_order` — the order algebra (``≤``, ``∧``, ``+``, ``−``, ``o∧s``);
* :mod:`.path_order` — exact DP for paths (Fig. 4) — ``PathOrder`` / ``MakePermutation``;
* :mod:`.tree_approx` — 2-approximation for binary trees (odd/even paths);
* :mod:`.hardness` — the SUM-CUT reduction behind Theorem 4.1;
* :mod:`.favorable` — favorable orders: benefit, ``ford-min`` and ``afm``;
* :mod:`.interesting` — interesting-order strategies PYRO … PYRO-E;
* :mod:`.refinement` — phase-2 plan refinement.
"""

from .sort_order import (
    EMPTY_ORDER,
    AttributeEquivalence,
    SortOrder,
    all_permutations,
    arbitrary_permutation,
    extend_to_set,
    longest_common_prefix,
    prefix_in_set,
)

__all__ = [
    "AttributeEquivalence",
    "EMPTY_ORDER",
    "SortOrder",
    "all_permutations",
    "arbitrary_permutation",
    "extend_to_set",
    "longest_common_prefix",
    "prefix_in_set",
]
