"""PathOrder: optimal sort-order permutations along a path (Section 4.2, Fig. 4).

Problem 1, restricted to paths: given nodes ``v1..vn`` (e.g. the
merge-joins of a left-deep plan), each with an attribute set ``s_i``,
choose a permutation ``p_i`` of each ``s_i`` maximising

    F = Σ_{edges (v_i, v_{i+1})} |p_i ∧ p_{i+1}|

(the total length of longest common prefixes of adjacent permutations —
a proxy for the sorting work the shared prefixes save).

The paper's dynamic program: for a segment ``(i, j)``,

    OPT(i, j) = max over i ≤ k < j of
                OPT(i, k) + OPT(k+1, j) + c(i, j)

where ``c(i, j) = |∩_{t=i..j} s_t|`` is the number of attributes common
to the whole segment.  ``MakePermutation`` then prepends the segment's
common attributes (in one fixed arbitrary permutation) to every node of
the segment and recurses into the two halves, subtracting used
attributes.

Complexity: ``O(n³)`` segment combinations with ``O(n·|s|)`` set work —
negligible for real plans (§6.3 reports < 6 ms for 31 joins, which
:mod:`benchmarks.bench_refinement_overhead` reproduces).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from .sort_order import SortOrder, arbitrary_permutation


@dataclass(frozen=True)
class PathOrderResult:
    """Permutations chosen for each path node plus the DP's benefit value."""

    permutations: tuple[SortOrder, ...]
    benefit: int

    def achieved_benefit(self) -> int:
        """Σ |lcp| actually realised by the permutations (sanity check —
        equals :attr:`benefit` by construction)."""
        return path_benefit(self.permutations)


def path_benefit(permutations: Sequence[SortOrder]) -> int:
    """Objective value of a permutation assignment along a path."""
    from .sort_order import longest_common_prefix
    total = 0
    for a, b in zip(permutations, permutations[1:]):
        total += len(longest_common_prefix(a, b))
    return total


def path_order(
    attr_sets: Sequence[Iterable[str]],
    permute: Optional[Callable[[frozenset[str]], SortOrder]] = None,
) -> PathOrderResult:
    """Run the PathOrder DP of Figure 4.

    ``attr_sets[i]`` is the attribute set of node ``v_{i+1}``.  *permute*
    supplies the "arbitrary permutation" of a set (deterministic
    lexicographic by default), letting callers bias tie-breaks.
    """
    sets = [frozenset(s) for s in attr_sets]
    n = len(sets)
    if n == 0:
        return PathOrderResult((), 0)
    if permute is None:
        permute = lambda s: arbitrary_permutation(s)  # noqa: E731

    # benefit[i][j], commons[i][j], split[i][j] for 0 <= i <= j < n.
    benefit = [[0] * n for _ in range(n)]
    commons: list[list[frozenset[str]]] = [[frozenset()] * n for _ in range(n)]
    split = [[-1] * n for _ in range(n)]
    for i in range(n):
        commons[i][i] = sets[i]

    for length in range(1, n):
        for i in range(n - length):
            j = i + length
            best_k, best_val = i, None
            for k in range(i, j):
                val = benefit[i][k] + benefit[k + 1][j]
                if best_val is None or val > best_val:
                    best_val, best_k = val, k
            seg_common = commons[i][best_k] & commons[best_k + 1][j]
            commons[i][j] = seg_common
            benefit[i][j] = best_val + len(seg_common)
            split[i][j] = best_k

    # MakePermutation: prepend each segment's common attributes (one shared
    # arbitrary permutation) to all nodes in the segment, consume them, and
    # recurse into the split halves.
    #
    # The paper's pseudocode subtracts the used set from *every* other
    # segment; applied to segments disjoint from (i, j) that would delete
    # attributes never emitted there, producing incomplete permutations
    # (e.g. sets {a,b},{a,b},{c},{a,d},{a,d}).  We therefore track the
    # unconsumed attributes per *node*, which confines the subtraction to
    # the segment being processed — clearly the intended semantics, since
    # ancestors of a segment all cover it entirely.
    perms: list[list[str]] = [[] for _ in range(n)]
    remaining = [set(s) for s in sets]

    def make_permutation(i: int, j: int) -> None:
        if i == j:
            leftover = frozenset(remaining[i])
            perms[i].extend(permute(leftover))
            remaining[i].clear()
            return
        shared = frozenset(commons[i][j]) & frozenset(remaining[i])
        # Attributes may already have been consumed by an enclosing segment.
        shared_perm = permute(shared)
        for k in range(i, j + 1):
            perms[k].extend(a for a in shared_perm if a in remaining[k])
            remaining[k].difference_update(shared)
        m = split[i][j]
        make_permutation(i, m)
        make_permutation(m + 1, j)

    make_permutation(0, n - 1)
    result = PathOrderResult(tuple(SortOrder(p) for p in perms), benefit[0][n - 1])
    return result


def brute_force_path_order(attr_sets: Sequence[Iterable[str]],
                           limit: int = 2_000_000) -> PathOrderResult:
    """Exhaustive optimum over all permutation assignments (tests only).

    Uses a simple DP over (position, permutation) pairs — the benefit of a
    path decomposes edge-by-edge, so exhaustive search over adjacent pairs
    suffices: ``O(Σ |P(s_i)|·|P(s_{i+1})|)``.
    """
    import itertools

    from .sort_order import longest_common_prefix

    sets = [sorted(frozenset(s)) for s in attr_sets]
    n = len(sets)
    if n == 0:
        return PathOrderResult((), 0)
    perm_lists = [[SortOrder(p) for p in itertools.permutations(s)] for s in sets]
    if max(len(pl) for pl in perm_lists) ** 2 * n > limit:
        raise ValueError("instance too large for brute force")

    # Forward DP: best[i][p] = max benefit of prefix ending with perm p at i.
    best = {p: 0 for p in perm_lists[0]}
    back: list[dict[SortOrder, SortOrder]] = [{}]
    for i in range(1, n):
        new_best: dict[SortOrder, int] = {}
        back.append({})
        for p in perm_lists[i]:
            top_val, top_prev = None, None
            for q, val in best.items():
                cand = val + len(longest_common_prefix(q, p))
                if top_val is None or cand > top_val:
                    top_val, top_prev = cand, q
            new_best[p] = top_val  # type: ignore[assignment]
            back[i][p] = top_prev  # type: ignore[assignment]
        best = new_best

    end_perm = max(best, key=lambda p: best[p])
    value = best[end_perm]
    perms = [end_perm]
    for i in range(n - 1, 0, -1):
        perms.append(back[i][perms[-1]])
    perms.reverse()
    return PathOrderResult(tuple(perms), value)
