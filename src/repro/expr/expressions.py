"""Scalar expressions and predicates.

A tiny, explicit expression AST — enough to express every query in the
paper's evaluation (Queries 1–6 plus Example 1): column references,
constants, arithmetic (Query 5 computes ``Quantity * Price``),
comparisons, conjunction/disjunction, and equality join predicates.

Expressions are compiled against a :class:`~repro.storage.schema.Schema`
in two forms:

* :meth:`Expression.compile` — a plain Python callable over one row
  tuple (the seed engine's inner loop);
* :meth:`Expression.compile_batch` — a **whole-column kernel** over a
  :class:`~repro.engine.batch.RowBatch`, returning one output value per
  row as a list.  Kernels evaluate a batch with a handful of C-level
  calls (``itemgetter``, one list comprehension per node) instead of a
  Python call per row, and ``And``/``Or`` short-circuit with a selection
  vector: later conjuncts only evaluate the rows still undecided.

Both forms implement identical semantics (SQL NULL propagation for
arithmetic, NULL-rejecting comparisons), so operators can switch between
them freely without changing results.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Union

from ..storage.schema import Schema

RowFn = Callable[[tuple], Any]
#: A batch kernel: RowBatch → list of one output value per row.  Typed
#: loosely to keep this module import-free of the engine package.
BatchFn = Callable[[Any], list]


class UnboundParamError(ValueError):
    """Compiling an expression that still contains a :class:`Param`.

    A ``ValueError`` subclass so seed-era callers that catch/assert
    ``ValueError`` keep working; the engine's operators catch this
    specific type to defer compilation until parameters are bound.
    """

_BIN_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
}

_CMP_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class Expression:
    """Base class of all scalar expressions."""

    def columns(self) -> frozenset[str]:
        """All column names referenced by the expression."""
        raise NotImplementedError

    def compile(self, schema: Schema) -> RowFn:
        """Compile to a row → value callable positionally bound to *schema*."""
        raise NotImplementedError

    def compile_batch(self, schema: Schema) -> BatchFn:
        """Compile to a batch → column (list of per-row values) kernel.

        The fallback maps the compiled row function over the batch, so
        any ``Expression`` subclass gets a correct (if unvectorized)
        kernel for free; the concrete nodes below override it with
        whole-column paths.
        """
        fn = self.compile(schema)
        return lambda batch: [fn(row) for row in batch.rows]

    # -- operator sugar ----------------------------------------------------------
    def __add__(self, other) -> "BinOp":
        return BinOp("+", self, wrap(other))

    def __sub__(self, other) -> "BinOp":
        return BinOp("-", self, wrap(other))

    def __mul__(self, other) -> "BinOp":
        return BinOp("*", self, wrap(other))

    def __truediv__(self, other) -> "BinOp":
        return BinOp("/", self, wrap(other))

    def eq(self, other) -> "Comparison":
        return Comparison("=", self, wrap(other))

    def ne(self, other) -> "Comparison":
        return Comparison("!=", self, wrap(other))

    def lt(self, other) -> "Comparison":
        return Comparison("<", self, wrap(other))

    def le(self, other) -> "Comparison":
        return Comparison("<=", self, wrap(other))

    def gt(self, other) -> "Comparison":
        return Comparison(">", self, wrap(other))

    def ge(self, other) -> "Comparison":
        return Comparison(">=", self, wrap(other))


def wrap(value: Union["Expression", int, float, str]) -> "Expression":
    """Lift a Python literal to a :class:`Const`; pass expressions through."""
    if isinstance(value, Expression):
        return value
    return Const(value)


@dataclass(frozen=True)
class Col(Expression):
    """A column reference by name."""

    name: str

    def columns(self) -> frozenset[str]:
        return frozenset({self.name})

    def compile(self, schema: Schema) -> RowFn:
        pos = schema.position(self.name)
        return operator.itemgetter(pos)

    def compile_batch(self, schema: Schema) -> BatchFn:
        pos = schema.position(self.name)
        # Zero-copy: the batch's cached column object itself.
        return lambda batch: batch.column(pos)

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(Expression):
    """A literal constant."""

    value: Any

    def columns(self) -> frozenset[str]:
        return frozenset()

    def compile(self, schema: Schema) -> RowFn:
        value = self.value
        return lambda row: value

    def compile_batch(self, schema: Schema) -> BatchFn:
        value = self.value
        return lambda batch: [value] * len(batch)

    def __repr__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Param(Expression):
    """A named query parameter (``:name`` placeholder).

    Parameters make a query *preparable*: the optimizer plans the
    template once (selectivity estimates in this model never depend on
    literal values, so the plan is bind-independent) and the serving
    layer substitutes :class:`Const` values at execution time — see
    :func:`repro.service.session.bind_expression`.  Compiling an unbound
    parameter is an error.
    """

    name: str

    def columns(self) -> frozenset[str]:
        return frozenset()

    def compile(self, schema: Schema) -> RowFn:
        raise UnboundParamError(
            f"unbound query parameter :{self.name}; execute the query "
            "through a prepared statement that supplies a binding")

    def compile_batch(self, schema: Schema) -> BatchFn:
        raise UnboundParamError(
            f"unbound query parameter :{self.name}; execute the query "
            "through a prepared statement that supplies a binding")

    def __repr__(self) -> str:
        return f":{self.name}"


def param(name: str) -> Param:
    """Convenience constructor for a named query parameter."""
    return Param(name)


@dataclass(frozen=True)
class BinOp(Expression):
    """Arithmetic over two sub-expressions."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _BIN_OPS:
            raise ValueError(f"unknown arithmetic operator {self.op!r}")

    def columns(self) -> frozenset[str]:
        return self.left.columns() | self.right.columns()

    def compile(self, schema: Schema) -> RowFn:
        fn = _BIN_OPS[self.op]
        lf, rf = self.left.compile(schema), self.right.compile(schema)

        def apply(row: tuple):
            # SQL arithmetic: NULL operands propagate (outer-join padding
            # flows through computed columns as NULL, not a TypeError).
            left, right = lf(row), rf(row)
            if left is None or right is None:
                return None
            return fn(left, right)

        return apply

    def compile_batch(self, schema: Schema) -> BatchFn:
        fn = _BIN_OPS[self.op]
        left, right = self.left, self.right
        # col ⊗ const (and mirrored): one comprehension over the column,
        # no per-row operand dispatch.
        if isinstance(left, Col) and isinstance(right, Const):
            pos, k = schema.position(left.name), right.value
            if k is None:
                return lambda batch: [None] * len(batch)
            return lambda batch: [None if v is None else fn(v, k)
                                  for v in batch.column(pos)]
        if isinstance(left, Const) and isinstance(right, Col):
            pos, k = schema.position(right.name), left.value
            if k is None:
                return lambda batch: [None] * len(batch)
            return lambda batch: [None if v is None else fn(k, v)
                                  for v in batch.column(pos)]
        lf, rf = left.compile_batch(schema), right.compile_batch(schema)
        return lambda batch: [None if a is None or b is None else fn(a, b)
                              for a, b in zip(lf(batch), rf(batch))]

    def __repr__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


class Predicate(Expression):
    """Boolean-valued expression."""

    def selectivity(self, stats) -> float:
        """Estimated fraction of rows passing (System-R defaults)."""
        raise NotImplementedError

    def conjuncts(self) -> list["Predicate"]:
        return [self]


@dataclass(frozen=True)
class Comparison(Predicate):
    """``left <op> right`` comparison."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _CMP_OPS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def columns(self) -> frozenset[str]:
        return self.left.columns() | self.right.columns()

    def compile(self, schema: Schema) -> RowFn:
        fn = _CMP_OPS[self.op]
        lf, rf = self.left.compile(schema), self.right.compile(schema)

        def apply(row: tuple) -> bool:
            # SQL three-valued logic collapsed for filtering: a NULL
            # operand makes the comparison UNKNOWN, which WHERE rejects
            # (outer-join padding must not crash downstream filters).
            left, right = lf(row), rf(row)
            if left is None or right is None:
                return False
            return fn(left, right)

        return apply

    def compile_batch(self, schema: Schema) -> BatchFn:
        fn = _CMP_OPS[self.op]
        left, right = self.left, self.right
        # The dominant filter shapes get dedicated column loops; all keep
        # the row path's NULL-is-UNKNOWN-is-rejected semantics.
        if isinstance(left, Col) and isinstance(right, Const):
            pos, k = schema.position(left.name), right.value
            if k is None:
                return lambda batch: [False] * len(batch)
            return lambda batch: [v is not None and fn(v, k)
                                  for v in batch.column(pos)]
        if isinstance(left, Const) and isinstance(right, Col):
            pos, k = schema.position(right.name), left.value
            if k is None:
                return lambda batch: [False] * len(batch)
            return lambda batch: [v is not None and fn(k, v)
                                  for v in batch.column(pos)]
        if isinstance(left, Col) and isinstance(right, Col):
            lpos, rpos = schema.position(left.name), schema.position(right.name)
            return lambda batch: [
                a is not None and b is not None and fn(a, b)
                for a, b in zip(batch.column(lpos), batch.column(rpos))]
        lf, rf = left.compile_batch(schema), right.compile_batch(schema)
        return lambda batch: [
            a is not None and b is not None and fn(a, b)
            for a, b in zip(lf(batch), rf(batch))]

    def selectivity(self, stats) -> float:
        if self.op == "=":
            # col = const/param → 1/D(col); col = col by join estimation.
            if isinstance(self.left, Col) and isinstance(self.right, (Const, Param)):
                return 1.0 / stats.distinct_of(self.left.name)
            if isinstance(self.right, Col) and isinstance(self.left, (Const, Param)):
                return 1.0 / stats.distinct_of(self.right.name)
            return 0.1
        if self.op == "!=":
            return 0.9
        return 1.0 / 3.0  # range predicates

    def __repr__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class And(Predicate):
    """Conjunction of predicates."""

    parts: tuple[Predicate, ...]

    def __init__(self, *parts: Predicate) -> None:
        flat: list[Predicate] = []
        for p in parts:
            if isinstance(p, And):
                flat.extend(p.parts)
            else:
                flat.append(p)
        object.__setattr__(self, "parts", tuple(flat))

    def columns(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for p in self.parts:
            out |= p.columns()
        return out

    def compile(self, schema: Schema) -> RowFn:
        fns = [p.compile(schema) for p in self.parts]
        return lambda row: all(fn(row) for fn in fns)

    def compile_batch(self, schema: Schema) -> BatchFn:
        fns = [p.compile_batch(schema) for p in self.parts]
        if not fns:
            return lambda batch: [True] * len(batch)
        if len(fns) == 1:
            return fns[0]
        first, rest = fns[0], fns[1:]

        def kernel(batch) -> list:
            # Selection-vector short-circuit: each later conjunct only
            # evaluates the rows still alive, on a compressed sub-batch,
            # and its verdicts are scattered back into the mask.
            mask = list(first(batch))
            for fn in rest:
                alive = sum(1 for m in mask if m)
                if alive == 0:
                    return mask
                if alive == len(mask):
                    mask = list(fn(batch))
                    continue
                verdicts = iter(fn(batch.compress(mask)))
                mask = [next(verdicts) if m else False for m in mask]
            return mask

        return kernel

    def selectivity(self, stats) -> float:
        sel = 1.0
        for p in self.parts:
            sel *= p.selectivity(stats)
        return sel

    def conjuncts(self) -> list[Predicate]:
        out: list[Predicate] = []
        for p in self.parts:
            out.extend(p.conjuncts())
        return out

    def __repr__(self) -> str:
        return " AND ".join(repr(p) for p in self.parts)


@dataclass(frozen=True)
class Or(Predicate):
    """Disjunction of predicates."""

    parts: tuple[Predicate, ...]

    def __init__(self, *parts: Predicate) -> None:
        object.__setattr__(self, "parts", tuple(parts))

    def columns(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for p in self.parts:
            out |= p.columns()
        return out

    def compile(self, schema: Schema) -> RowFn:
        fns = [p.compile(schema) for p in self.parts]
        return lambda row: any(fn(row) for fn in fns)

    def compile_batch(self, schema: Schema) -> BatchFn:
        fns = [p.compile_batch(schema) for p in self.parts]
        if not fns:
            return lambda batch: [False] * len(batch)
        if len(fns) == 1:
            return fns[0]
        first, rest = fns[0], fns[1:]

        def kernel(batch) -> list:
            # Dual of the And kernel: later disjuncts only evaluate the
            # rows not yet accepted.
            mask = list(first(batch))
            for fn in rest:
                undecided = sum(1 for m in mask if not m)
                if undecided == 0:
                    return mask
                if undecided == len(mask):
                    mask = list(fn(batch))
                    continue
                verdicts = iter(fn(batch.compress([not m for m in mask])))
                mask = [m if m else next(verdicts) for m in mask]
            return mask

        return kernel

    def selectivity(self, stats) -> float:
        miss = 1.0
        for p in self.parts:
            miss *= 1.0 - p.selectivity(stats)
        return 1.0 - miss

    def __repr__(self) -> str:
        return "(" + " OR ".join(repr(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class JoinPredicate:
    """A conjunctive equality join predicate.

    ``pairs`` lists ``(left_column, right_column)`` equalities.  The *join
    attribute set* of the paper is the set of pair positions; merge join
    may sort on any permutation of them.
    """

    pairs: tuple[tuple[str, str], ...]

    def __init__(self, pairs: Iterable[tuple[str, str]]) -> None:
        pairs = tuple((str(l), str(r)) for l, r in pairs)
        if not pairs:
            raise ValueError("join predicate needs at least one equality pair")
        if len({l for l, _ in pairs}) != len(pairs) or len({r for _, r in pairs}) != len(pairs):
            raise ValueError(f"duplicate column in join predicate {pairs}")
        object.__setattr__(self, "pairs", pairs)

    @property
    def left_columns(self) -> tuple[str, ...]:
        return tuple(l for l, _ in self.pairs)

    @property
    def right_columns(self) -> tuple[str, ...]:
        return tuple(r for _, r in self.pairs)

    def left_for_right(self, right_col: str) -> str:
        for l, r in self.pairs:
            if r == right_col:
                return l
        raise KeyError(right_col)

    def right_for_left(self, left_col: str) -> str:
        for l, r in self.pairs:
            if l == left_col:
                return r
        raise KeyError(left_col)

    def __len__(self) -> int:
        return len(self.pairs)

    def __repr__(self) -> str:
        return " AND ".join(f"{l}={r}" for l, r in self.pairs)


def col(name: str) -> Col:
    """Convenience constructor, mirrors SQL column references."""
    return Col(name)
