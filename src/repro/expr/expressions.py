"""Scalar expressions and predicates.

A tiny, explicit expression AST — enough to express every query in the
paper's evaluation (Queries 1–6 plus Example 1): column references,
constants, arithmetic (Query 5 computes ``Quantity * Price``),
comparisons, conjunction/disjunction, and equality join predicates.

Expressions are compiled against a :class:`~repro.storage.schema.Schema`
into plain Python callables over row tuples, so the inner loop of the
executor pays no interpretation overhead beyond one function call.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Union

from ..storage.schema import Schema

RowFn = Callable[[tuple], Any]

_BIN_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
}

_CMP_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class Expression:
    """Base class of all scalar expressions."""

    def columns(self) -> frozenset[str]:
        """All column names referenced by the expression."""
        raise NotImplementedError

    def compile(self, schema: Schema) -> RowFn:
        """Compile to a row → value callable positionally bound to *schema*."""
        raise NotImplementedError

    # -- operator sugar ----------------------------------------------------------
    def __add__(self, other) -> "BinOp":
        return BinOp("+", self, wrap(other))

    def __sub__(self, other) -> "BinOp":
        return BinOp("-", self, wrap(other))

    def __mul__(self, other) -> "BinOp":
        return BinOp("*", self, wrap(other))

    def __truediv__(self, other) -> "BinOp":
        return BinOp("/", self, wrap(other))

    def eq(self, other) -> "Comparison":
        return Comparison("=", self, wrap(other))

    def ne(self, other) -> "Comparison":
        return Comparison("!=", self, wrap(other))

    def lt(self, other) -> "Comparison":
        return Comparison("<", self, wrap(other))

    def le(self, other) -> "Comparison":
        return Comparison("<=", self, wrap(other))

    def gt(self, other) -> "Comparison":
        return Comparison(">", self, wrap(other))

    def ge(self, other) -> "Comparison":
        return Comparison(">=", self, wrap(other))


def wrap(value: Union["Expression", int, float, str]) -> "Expression":
    """Lift a Python literal to a :class:`Const`; pass expressions through."""
    if isinstance(value, Expression):
        return value
    return Const(value)


@dataclass(frozen=True)
class Col(Expression):
    """A column reference by name."""

    name: str

    def columns(self) -> frozenset[str]:
        return frozenset({self.name})

    def compile(self, schema: Schema) -> RowFn:
        pos = schema.position(self.name)
        return operator.itemgetter(pos)

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(Expression):
    """A literal constant."""

    value: Any

    def columns(self) -> frozenset[str]:
        return frozenset()

    def compile(self, schema: Schema) -> RowFn:
        value = self.value
        return lambda row: value

    def __repr__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Param(Expression):
    """A named query parameter (``:name`` placeholder).

    Parameters make a query *preparable*: the optimizer plans the
    template once (selectivity estimates in this model never depend on
    literal values, so the plan is bind-independent) and the serving
    layer substitutes :class:`Const` values at execution time — see
    :func:`repro.service.session.bind_expression`.  Compiling an unbound
    parameter is an error.
    """

    name: str

    def columns(self) -> frozenset[str]:
        return frozenset()

    def compile(self, schema: Schema) -> RowFn:
        raise ValueError(
            f"unbound query parameter :{self.name}; execute the query "
            "through a prepared statement that supplies a binding")

    def __repr__(self) -> str:
        return f":{self.name}"


def param(name: str) -> Param:
    """Convenience constructor for a named query parameter."""
    return Param(name)


@dataclass(frozen=True)
class BinOp(Expression):
    """Arithmetic over two sub-expressions."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _BIN_OPS:
            raise ValueError(f"unknown arithmetic operator {self.op!r}")

    def columns(self) -> frozenset[str]:
        return self.left.columns() | self.right.columns()

    def compile(self, schema: Schema) -> RowFn:
        fn = _BIN_OPS[self.op]
        lf, rf = self.left.compile(schema), self.right.compile(schema)

        def apply(row: tuple):
            # SQL arithmetic: NULL operands propagate (outer-join padding
            # flows through computed columns as NULL, not a TypeError).
            left, right = lf(row), rf(row)
            if left is None or right is None:
                return None
            return fn(left, right)

        return apply

    def __repr__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


class Predicate(Expression):
    """Boolean-valued expression."""

    def selectivity(self, stats) -> float:
        """Estimated fraction of rows passing (System-R defaults)."""
        raise NotImplementedError

    def conjuncts(self) -> list["Predicate"]:
        return [self]


@dataclass(frozen=True)
class Comparison(Predicate):
    """``left <op> right`` comparison."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _CMP_OPS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def columns(self) -> frozenset[str]:
        return self.left.columns() | self.right.columns()

    def compile(self, schema: Schema) -> RowFn:
        fn = _CMP_OPS[self.op]
        lf, rf = self.left.compile(schema), self.right.compile(schema)

        def apply(row: tuple) -> bool:
            # SQL three-valued logic collapsed for filtering: a NULL
            # operand makes the comparison UNKNOWN, which WHERE rejects
            # (outer-join padding must not crash downstream filters).
            left, right = lf(row), rf(row)
            if left is None or right is None:
                return False
            return fn(left, right)

        return apply

    def selectivity(self, stats) -> float:
        if self.op == "=":
            # col = const/param → 1/D(col); col = col by join estimation.
            if isinstance(self.left, Col) and isinstance(self.right, (Const, Param)):
                return 1.0 / stats.distinct_of(self.left.name)
            if isinstance(self.right, Col) and isinstance(self.left, (Const, Param)):
                return 1.0 / stats.distinct_of(self.right.name)
            return 0.1
        if self.op == "!=":
            return 0.9
        return 1.0 / 3.0  # range predicates

    def __repr__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class And(Predicate):
    """Conjunction of predicates."""

    parts: tuple[Predicate, ...]

    def __init__(self, *parts: Predicate) -> None:
        flat: list[Predicate] = []
        for p in parts:
            if isinstance(p, And):
                flat.extend(p.parts)
            else:
                flat.append(p)
        object.__setattr__(self, "parts", tuple(flat))

    def columns(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for p in self.parts:
            out |= p.columns()
        return out

    def compile(self, schema: Schema) -> RowFn:
        fns = [p.compile(schema) for p in self.parts]
        return lambda row: all(fn(row) for fn in fns)

    def selectivity(self, stats) -> float:
        sel = 1.0
        for p in self.parts:
            sel *= p.selectivity(stats)
        return sel

    def conjuncts(self) -> list[Predicate]:
        out: list[Predicate] = []
        for p in self.parts:
            out.extend(p.conjuncts())
        return out

    def __repr__(self) -> str:
        return " AND ".join(repr(p) for p in self.parts)


@dataclass(frozen=True)
class Or(Predicate):
    """Disjunction of predicates."""

    parts: tuple[Predicate, ...]

    def __init__(self, *parts: Predicate) -> None:
        object.__setattr__(self, "parts", tuple(parts))

    def columns(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for p in self.parts:
            out |= p.columns()
        return out

    def compile(self, schema: Schema) -> RowFn:
        fns = [p.compile(schema) for p in self.parts]
        return lambda row: any(fn(row) for fn in fns)

    def selectivity(self, stats) -> float:
        miss = 1.0
        for p in self.parts:
            miss *= 1.0 - p.selectivity(stats)
        return 1.0 - miss

    def __repr__(self) -> str:
        return "(" + " OR ".join(repr(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class JoinPredicate:
    """A conjunctive equality join predicate.

    ``pairs`` lists ``(left_column, right_column)`` equalities.  The *join
    attribute set* of the paper is the set of pair positions; merge join
    may sort on any permutation of them.
    """

    pairs: tuple[tuple[str, str], ...]

    def __init__(self, pairs: Iterable[tuple[str, str]]) -> None:
        pairs = tuple((str(l), str(r)) for l, r in pairs)
        if not pairs:
            raise ValueError("join predicate needs at least one equality pair")
        if len({l for l, _ in pairs}) != len(pairs) or len({r for _, r in pairs}) != len(pairs):
            raise ValueError(f"duplicate column in join predicate {pairs}")
        object.__setattr__(self, "pairs", pairs)

    @property
    def left_columns(self) -> tuple[str, ...]:
        return tuple(l for l, _ in self.pairs)

    @property
    def right_columns(self) -> tuple[str, ...]:
        return tuple(r for _, r in self.pairs)

    def left_for_right(self, right_col: str) -> str:
        for l, r in self.pairs:
            if r == right_col:
                return l
        raise KeyError(right_col)

    def right_for_left(self, left_col: str) -> str:
        for l, r in self.pairs:
            if l == left_col:
                return r
        raise KeyError(left_col)

    def __len__(self) -> int:
        return len(self.pairs)

    def __repr__(self) -> str:
        return " AND ".join(f"{l}={r}" for l, r in self.pairs)


def col(name: str) -> Col:
    """Convenience constructor, mirrors SQL column references."""
    return Col(name)
