"""Scalar/predicate expression language for filters, joins and aggregates."""

from .expressions import (
    And,
    BinOp,
    Col,
    Comparison,
    Const,
    Expression,
    JoinPredicate,
    Or,
    Param,
    Predicate,
    UnboundParamError,
    col,
    param,
    wrap,
)
from .aggregates import AggregateFunction, AggSpec, AGGREGATES

__all__ = [
    "AGGREGATES",
    "AggSpec",
    "AggregateFunction",
    "And",
    "BinOp",
    "Col",
    "Comparison",
    "Const",
    "Expression",
    "JoinPredicate",
    "Or",
    "Param",
    "Predicate",
    "UnboundParamError",
    "col",
    "param",
    "wrap",
]
