"""Aggregate function specifications.

``AggSpec`` pairs an aggregate function name with an input expression and
an output column name, e.g. Query 5's
``SUM(T2.Quantity * T2.Price) AS ExecutedValue`` becomes
``AggSpec("sum", col("t2_quantity") * col("t2_price"), "executedvalue")``.

Aggregates are implemented as classic init/step/final state machines so
both the sort-based (streaming) and hash-based (dict of states)
aggregation operators share them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..storage.schema import Column, Schema
from .expressions import Col, Expression, wrap


@dataclass(frozen=True)
class AggregateFunction:
    """An incremental aggregate: ``init() → state``, ``step(state, v)``,
    ``final(state) → value``."""

    name: str
    init: Callable[[], Any]
    step: Callable[[Any, Any], Any]
    final: Callable[[Any], Any]
    ignores_null: bool = True


def _avg_final(state: tuple[float, int]) -> Optional[float]:
    total, count = state
    return total / count if count else None


AGGREGATES: dict[str, AggregateFunction] = {
    "count": AggregateFunction(
        "count", init=lambda: 0, step=lambda s, v: s + 1, final=lambda s: s
    ),
    "sum": AggregateFunction(
        "sum", init=lambda: None,
        step=lambda s, v: v if s is None else s + v,
        final=lambda s: s,
    ),
    "min": AggregateFunction(
        "min", init=lambda: None,
        step=lambda s, v: v if s is None else min(s, v),
        final=lambda s: s,
    ),
    "max": AggregateFunction(
        "max", init=lambda: None,
        step=lambda s, v: v if s is None else max(s, v),
        final=lambda s: s,
    ),
    "avg": AggregateFunction(
        "avg", init=lambda: (0.0, 0),
        step=lambda s, v: (s[0] + v, s[1] + 1),
        final=_avg_final,
    ),
    "count_star": AggregateFunction(
        "count_star", init=lambda: 0, step=lambda s, v: s + 1, final=lambda s: s,
        ignores_null=False,
    ),
}


@dataclass(frozen=True)
class AggSpec:
    """One aggregate in a GROUP BY's select list."""

    func: str
    arg: Expression
    output_name: str
    output_size: int = 8

    def __init__(self, func: str, arg, output_name: str, output_size: int = 8) -> None:
        func = func.lower()
        if func not in AGGREGATES:
            raise ValueError(f"unknown aggregate {func!r}; have {sorted(AGGREGATES)}")
        object.__setattr__(self, "func", func)
        object.__setattr__(self, "arg", wrap(arg))
        object.__setattr__(self, "output_name", output_name)
        object.__setattr__(self, "output_size", output_size)

    @property
    def function(self) -> AggregateFunction:
        return AGGREGATES[self.func]

    def output_column(self) -> Column:
        return Column(self.output_name, "num", self.output_size)

    def columns(self) -> frozenset[str]:
        return self.arg.columns()

    def __repr__(self) -> str:
        return f"{self.func}({self.arg}) AS {self.output_name}"


def count(arg, name: str = "count") -> AggSpec:
    return AggSpec("count", arg, name)


def count_star(name: str = "count") -> AggSpec:
    from .expressions import Const
    return AggSpec("count_star", Const(1), name)


def agg_sum(arg, name: str = "sum") -> AggSpec:
    return AggSpec("sum", arg, name)


def agg_min(arg, name: str = "min") -> AggSpec:
    return AggSpec("min", arg, name)


def agg_max(arg, name: str = "max") -> AggSpec:
    return AggSpec("max", arg, name)


def agg_avg(arg, name: str = "avg") -> AggSpec:
    return AggSpec("avg", arg, name)


def aggregate_output_schema(group_columns: list[str], input_schema: Schema,
                            aggs: list[AggSpec]) -> Schema:
    """Schema of a GROUP BY output: group columns then aggregate columns."""
    cols = [input_schema[name] for name in group_columns]
    cols.extend(spec.output_column() for spec in aggs)
    return Schema(cols)
