"""The plan cache: fingerprint-keyed, stats-versioned, LRU-bounded.

Production optimizers are rarely the latency bottleneck because they are
rarely *run*: repeated and parameterized queries are served from a plan
cache.  This module supplies that cache for the PYRO optimizer.

A cached plan is valid for exactly one *catalog statistics version*
(:attr:`repro.storage.catalog.Catalog.stats_version`): any statistics
refresh, new table or new index bumps the version and silently
invalidates every cached plan on its next lookup — a plan chosen for
yesterday's data distribution must not serve today's.

The cache is deliberately dumb about queries: the key is the canonical
logical fingerprint (see :mod:`repro.logical.fingerprint`) plus the
required order, computed by the caller.  That keeps this module free of
optimizer imports and trivially testable.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Generic, Hashable, Optional, TypeVar

PlanT = TypeVar("PlanT")


@dataclass
class CacheStats:
    """Observable counters; the serving benchmark reports these."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class _Entry(Generic[PlanT]):
    plan: PlanT
    stats_version: int
    uses: int = 0


class PlanCache(Generic[PlanT]):
    """LRU cache of optimized plans keyed by query fingerprint.

    ``get``/``put`` take the *current* catalog statistics version; an
    entry cached under an older version is dropped at lookup time and
    counted as an invalidation (which is also a miss — the caller must
    re-optimize).
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError("plan cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, _Entry[PlanT]]" = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable, stats_version: int) -> Optional[PlanT]:
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        if entry.stats_version != stats_version:
            # The world changed under the plan: drop it.
            del self._entries[key]
            self.stats.invalidations += 1
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        entry.uses += 1
        self.stats.hits += 1
        return entry.plan

    def put(self, key: Hashable, plan: PlanT, stats_version: int) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = _Entry(plan, stats_version)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def invalidate_all(self) -> int:
        """Drop every entry (e.g. after a bulk load); returns the count."""
        dropped = len(self._entries)
        self._entries.clear()
        self.stats.invalidations += dropped
        return dropped

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats
        return (f"PlanCache({len(self._entries)}/{self.capacity} entries, "
                f"{s.hits} hits / {s.misses} misses)")
