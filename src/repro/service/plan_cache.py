"""The plan cache: fingerprint-keyed, version-tokened, LRU-bounded,
optionally TTL-expired.

Production optimizers are rarely the latency bottleneck because they are
rarely *run*: repeated and parameterized queries are served from a plan
cache.  This module supplies that cache for the PYRO optimizer.

A cached plan is valid for exactly one *version token*.  The serving
layer passes the per-table version tuple from
:meth:`repro.storage.catalog.Catalog.table_versions` — the statistics
and index-registration versions of **only the tables the plan reads** —
so a statistics refresh or new index invalidates exactly the plans that
depend on it and leaves everything else cached.  (Any hashable token
works; the cache compares by equality and stays free of catalog
imports.)

Admission policy:

* **LRU capacity** — the least-recently-used entry is evicted when the
  cache exceeds ``capacity`` (counted in ``stats.evictions``);
* **TTL** — with ``ttl_seconds`` set, an entry older than the TTL is
  dropped at lookup time (counted in ``stats.expirations``).  A TTL
  bounds the lifetime of plans whose *data* changed without a stats
  refresh — cheap insurance when auto-analyze is not wired up.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Generic, Hashable, Optional, TypeVar

PlanT = TypeVar("PlanT")


@dataclass
class CacheStats:
    """Observable counters; the serving benchmark reports these."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0
    expirations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, float]:
        return {"hits": self.hits, "misses": self.misses,
                "invalidations": self.invalidations,
                "evictions": self.evictions,
                "expirations": self.expirations,
                "hit_rate": self.hit_rate}


@dataclass
class _Entry(Generic[PlanT]):
    plan: PlanT
    stats_version: Hashable
    created_at: float
    uses: int = 0


class PlanCache(Generic[PlanT]):
    """LRU+TTL cache of optimized plans keyed by query fingerprint.

    ``get``/``put`` take the *current* version token for the plan's
    referenced tables; an entry cached under a different token is
    dropped at lookup time and counted as an invalidation (which is also
    a miss — the caller must re-optimize).  ``clock`` is injectable for
    deterministic TTL tests.
    """

    def __init__(self, capacity: int = 128,
                 ttl_seconds: Optional[float] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if capacity < 1:
            raise ValueError("plan cache capacity must be >= 1")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive (or None)")
        self.capacity = capacity
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._entries: "OrderedDict[Hashable, _Entry[PlanT]]" = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable, stats_version: Hashable) -> Optional[PlanT]:
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        if self.ttl_seconds is not None and \
                self._clock() - entry.created_at >= self.ttl_seconds:
            # Too old to trust, whatever the catalog says.
            del self._entries[key]
            self.stats.expirations += 1
            self.stats.misses += 1
            return None
        if entry.stats_version != stats_version:
            # The world changed under the plan: drop it.
            del self._entries[key]
            self.stats.invalidations += 1
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        entry.uses += 1
        self.stats.hits += 1
        return entry.plan

    def put(self, key: Hashable, plan: PlanT, stats_version: Hashable) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = _Entry(plan, stats_version, self._clock())
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def invalidate_all(self) -> int:
        """Drop every entry (e.g. after a bulk load); returns the count."""
        dropped = len(self._entries)
        self._entries.clear()
        self.stats.invalidations += dropped
        return dropped

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats
        return (f"PlanCache({len(self._entries)}/{self.capacity} entries, "
                f"{s.hits} hits / {s.misses} misses)")


class SharedPlanCache(PlanCache[PlanT]):
    """A concurrency-safe plan cache shared across many sessions.

    The cross-session cache of the serving tier: one instance is handed
    to every :class:`~repro.service.session.QuerySession` a
    :class:`~repro.service.server.QueryServer` creates, so a plan
    optimized on one dispatch thread serves every other.  Cached
    :class:`~repro.optimizer.plans.PhysicalPlan` values are immutable
    (frozen dataclasses) and lowered to fresh operator trees per
    execution, so sharing the *values* is safe; this class only has to
    make the cache *bookkeeping* (LRU order, TTL expiry, counters)
    atomic, which one lock around each public operation does.  The
    counters in :attr:`stats` are mutated exclusively under the lock, so
    ``hits + misses == lookups`` holds at every observable instant.
    """

    def __init__(self, capacity: int = 128,
                 ttl_seconds: Optional[float] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        super().__init__(capacity, ttl_seconds, clock)
        self._lock = threading.RLock()

    def get(self, key: Hashable, stats_version: Hashable) -> Optional[PlanT]:
        with self._lock:
            return super().get(key, stats_version)

    def put(self, key: Hashable, plan: PlanT, stats_version: Hashable) -> None:
        with self._lock:
            super().put(key, plan, stats_version)

    def invalidate_all(self) -> int:
        with self._lock:
            return super().invalidate_all()

    def __len__(self) -> int:
        with self._lock:
            return super().__len__()

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return super().__contains__(key)
