"""Query-serving layer: plan cache + prepared queries + the concurrent
query server.

The optimizer reproduces the paper; this package makes it *servable*:
repeated and parameterized queries hit a fingerprint-keyed, statistics-
versioned plan cache instead of re-running the Volcano search, and
:class:`QueryServer` serves many concurrent clients with admission
control and a pluggable execution backend (in-process or a multi-core
process pool).
"""

from .backends import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    ThreadBackend,
    make_backend,
)
from .client import (
    RetriesExhausted,
    RetryingClient,
    RetryPolicy,
    TokenBucket,
    is_transient,
)
from .feedback import FeedbackConfig
from .metrics import CircuitBreaker, LatencyTracker, ServerMetrics
from .plan_cache import CacheStats, PlanCache, SharedPlanCache
# Re-exported so serving callers configure observability without a
# second import (`QueryServer(..., obs=ObservabilityConfig(...))`).
from ..obs import ObservabilityConfig, Tracer
from .server import (
    CircuitOpen,
    QueryRejected,
    QueryResult,
    QueryServer,
    QueryTimeout,
    TracedResult,
)
from .session import (
    PreparedQuery,
    QuerySession,
    SessionMetrics,
    bind_expression,
    bind_plan,
    plan_params,
)

__all__ = [
    "CacheStats",
    "CircuitBreaker",
    "CircuitOpen",
    "ExecutionBackend",
    "FeedbackConfig",
    "LatencyTracker",
    "ObservabilityConfig",
    "PlanCache",
    "PreparedQuery",
    "ProcessPoolBackend",
    "QueryRejected",
    "QueryResult",
    "QueryServer",
    "QuerySession",
    "QueryTimeout",
    "RetriesExhausted",
    "RetryPolicy",
    "RetryingClient",
    "SerialBackend",
    "ServerMetrics",
    "SessionMetrics",
    "SharedPlanCache",
    "ThreadBackend",
    "TokenBucket",
    "TracedResult",
    "Tracer",
    "bind_expression",
    "bind_plan",
    "is_transient",
    "make_backend",
    "plan_params",
]
