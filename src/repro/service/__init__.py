"""Query-serving layer: plan cache + prepared queries.

The optimizer reproduces the paper; this package makes it *servable*:
repeated and parameterized queries hit a fingerprint-keyed, statistics-
versioned plan cache instead of re-running the Volcano search.
"""

from .plan_cache import CacheStats, PlanCache
from .session import (
    PreparedQuery,
    QuerySession,
    SessionMetrics,
    bind_expression,
    bind_plan,
    plan_params,
)

__all__ = [
    "CacheStats",
    "PlanCache",
    "PreparedQuery",
    "QuerySession",
    "SessionMetrics",
    "bind_expression",
    "bind_plan",
    "plan_params",
]
