"""Feedback-driven re-optimization: close the estimate→execution loop.

Every lowered operator carries a ``(tag, estimated_rows)`` meter stamped
from the plan's cost-model stats (:func:`repro.engine.lowering.meter_for`),
and executions tally actual rows per tag into
``ExecutionContext.operator_rows`` — including through the process-pool
backend, whose worker tallies travel home with each shard.  This module
turns those tallies into catalog refreshes:

1. After an execution, :meth:`QuerySession.observe_execution` compares
   estimated vs actual rows for every *scan* tag (scan tags embed the
   table name).
2. A scan whose actuals drift past ``FeedbackConfig.drift_threshold`` is
   a candidate — but the estimate may be wrong for benign per-run
   reasons (an early-terminating consumer pulls fewer rows than the
   table holds), so the drift is verified against ground truth: the
   table's *declared* ``stats.num_rows`` must itself disagree with the
   materialised row count by the same threshold.
3. Verified drift calls ``catalog.refresh_stats(table)``, re-measuring
   statistics (including the per-column distinct sketches) from the
   rows.  That bumps the table's ``stats_version``, the catalog token
   cached plans are keyed on — so every cached plan reading the table is
   invalidated and the next ``prepare`` re-optimizes cost-first, under
   live traffic, with estimates that now match reality.

Feedback is opt-in (``QuerySession(feedback=FeedbackConfig())`` /
``QueryServer(feedback=...)``).  It never changes the rows a query
returns — only *which plan* serves the queries that follow.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Meter-tag prefixes whose actual row counts describe a base table (the
#: tag's suffix after ``:`` names it).  Mirrors
#: :data:`repro.engine.lowering._TABLE_SCAN_OPS` minus covering-index
#: scans, whose row counts describe the index, not the table.
SCAN_TAG_OPS = frozenset((
    "TableScan", "ShardedScan", "RangePartitionScan", "ClusteringIndexScan",
))


@dataclass(frozen=True)
class FeedbackConfig:
    """Knobs of the drift detector.

    ``drift_threshold`` is a ratio: actuals outside
    ``[estimated/t, estimated*t]`` count as drifted.  ``min_rows`` floors
    the comparison — tiny results produce noisy ratios and never pay for
    a re-optimization anyway.
    """

    drift_threshold: float = 2.0
    min_rows: int = 64

    def __post_init__(self) -> None:
        if self.drift_threshold <= 1.0:
            raise ValueError("drift_threshold must be > 1")
        if self.min_rows < 0:
            raise ValueError("min_rows must be >= 0")

    def drifted(self, estimated: int, actual: int) -> bool:
        """Whether an (estimated, actual) row pair is past the threshold."""
        if max(estimated, actual) < self.min_rows:
            return False
        lo, hi = min(estimated, actual), max(estimated, actual)
        return lo * self.drift_threshold < hi


def scan_table(tag: str) -> str | None:
    """The table a meter tag scans, or ``None`` for non-scan tags."""
    op, sep, table = tag.partition(":")
    if sep and op in SCAN_TAG_OPS:
        return table
    return None
