"""The query-serving facade: prepare once, execute many.

:class:`QuerySession` wires the optimizer, the plan cache and the
execution engine into the loop a production system actually runs:

1. ``prepare(query)`` — fingerprint the logical tree, look the plan up
   in the :class:`~repro.service.plan_cache.PlanCache`; only on a miss
   pay for a full (cost-bounded) Volcano search.
2. ``PreparedQuery.execute(**binds)`` — substitute parameter bindings
   into the cached physical plan and run it on the engine.

Parameters (:class:`repro.expr.expressions.Param`) make one cache entry
serve a whole family of queries: the cost model's selectivity estimates
never depend on literal values, so the plan is bind-independent by
construction, and binding is a pure plan-tree substitution — the
optimizer is not consulted again.

Cached plans are keyed on the versions of **only the tables they
reference** (:meth:`repro.storage.catalog.Catalog.table_versions`):
``refresh_stats("orders")`` or a new index on ``orders`` invalidates
exactly the plans that read ``orders`` and leaves the rest of the cache
hot.

Execution is batch-vectorized: ``execute`` accepts a ``batch_size``
(rows per :class:`~repro.engine.batch.RowBatch`) and a ``parallelism``
knob that fans full table scans out into contiguous shards driven
through the :class:`~repro.engine.executor.BatchedExecutor`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Optional, Union as TUnion

from ..engine.context import ExecutionContext
from ..engine.executor import BatchedExecutor
from ..engine.kernels import attach_plan_kernels, kernel_stats
from ..logical.algebra import LogicalExpr, referenced_tables
from ..logical.builder import Query
from ..logical.fingerprint import logical_fingerprint
from ..core.sort_order import SortOrder
from ..obs.analyze import ExplainAnalyze
from ..obs.trace import child_span
from ..optimizer.plans import PhysicalPlan
from ..optimizer.volcano import (
    Optimizer,
    OptimizerConfig,
    shardable_enforcement_input,
    split_required_order,
)
from ..storage.catalog import Catalog
from .feedback import FeedbackConfig, scan_table
from .plan_cache import PlanCache


# -- parameter binding (pipeline stage 4; re-exported here for compat) ---------------
# bind_expression / expression_params / plan_params / bind_plan moved to
# the optimizer pipeline's parameterization stage; the serving layer (and
# repro.service.__init__) keeps importing them from this module.
from ..optimizer.pipeline.parameterization import (  # noqa: E402,F401
    bind_expression,
    bind_plan,
    expression_params,
    plan_params,
)


# -- the session ------------------------------------------------------------------------
@dataclass
class SessionMetrics:
    """Serving-side counters (cache counters live on the cache itself)."""

    prepares: int = 0
    optimizations: int = 0
    executions: int = 0
    optimize_seconds: float = 0.0
    #: Shard-aware enforcer placement decisions, counted once per fresh
    #: optimization at ``parallelism > 1``: plans that enforce order
    #: per shard under a MergeExchange vs plans that kept the post-union
    #: sort because the cost model said the merge would not pay off.
    shard_merge_plans: int = 0
    post_union_sort_plans: int = 0
    #: Fresh plans that shard a *join* (per-shard merge joins under an
    #: exchange gather — broadcast or co-partitioned) and plans that
    #: shard an *aggregation* (per-shard aggregates + final combine).
    sharded_join_plans: int = 0
    sharded_agg_plans: int = 0
    #: Fresh plans that shard a *DISTINCT*: per-shard Dedup under a
    #: MergeExchange with a merge-level final dedup.
    sharded_distinct_plans: int = 0
    #: Per-stage optimizer telemetry, summed over fresh optimizations
    #: (from :attr:`Optimizer.last_telemetry`): stage-2 join-enumeration
    #: wall time and candidate count, and stage-3 search effort — goals
    #: expanded/pruned and (failure-)memo hits.
    enumerator_seconds: float = 0.0
    join_order_candidates: int = 0
    goals_examined: int = 0
    goals_pruned: int = 0
    memo_hits: int = 0
    failure_memo_hits: int = 0
    #: Adaptive-statistics feedback (sessions built with a
    #: :class:`~repro.service.feedback.FeedbackConfig`): executions whose
    #: tallies were inspected, scan meters found past the drift
    #: threshold, and catalog refreshes actually performed (drift that
    #: survived the ground-truth check — each one bumps ``stats_version``
    #: and invalidates the cached plans reading the table).
    drift_checks: int = 0
    drift_events: int = 0
    feedback_refreshes: int = 0


class PreparedQuery:
    """An optimized, cached plan ready for (repeated) execution."""

    def __init__(self, session: "QuerySession", plan: PhysicalPlan,
                 fingerprint: str, required: SortOrder,
                 from_cache: bool, tables: frozenset[str] = frozenset(),
                 parallelism: int = 1) -> None:
        self.session = session
        self.plan = plan
        self.fingerprint = fingerprint
        self.required_order = required
        self.from_cache = from_cache
        self.tables = tables
        #: The shard fan-out the plan was optimized for; ``execute``
        #: defaults to it so the merge-exchange choice and the runtime
        #: sharding stay in lockstep.
        self.parallelism = parallelism
        self.param_names = plan_params(plan)

    @property
    def total_cost(self) -> float:
        return self.plan.total_cost

    def explain(self) -> str:
        return self.plan.explain()

    def bind(self, **binds: Any) -> PhysicalPlan:
        """The executable plan with parameters substituted."""
        unknown = set(binds) - set(self.param_names)
        if unknown:
            raise KeyError(f"unknown query parameters: {sorted(unknown)}")
        missing = set(self.param_names) - set(binds)
        if missing:
            raise KeyError(f"missing bindings for parameters: {sorted(missing)}")
        if not self.param_names:
            return self.plan
        return bind_plan(self.plan, binds)

    def execute(self, ctx: Optional[ExecutionContext] = None,
                parallelism: Optional[int] = None,
                batch_size: Optional[int] = None,
                use_threads: bool = False, **binds: Any) -> list[tuple]:
        """Run the plan on the batched engine.

        ``parallelism`` (default: the value the plan was prepared with)
        shards every full table scan into that many contiguous partitions
        gathered by an ExchangeUnion; scans the optimizer already sharded
        under a MergeExchange are left as planned.  ``batch_size`` sets
        the rows-per-batch of a context created here (ignored when *ctx*
        is supplied).
        """
        plan = self.bind(**binds)
        self.session.metrics.executions += 1
        ctx = ctx or ExecutionContext(self.session.catalog,
                                      batch_size=batch_size)
        if parallelism is None:
            parallelism = self.parallelism
        executor = BatchedExecutor(parallelism=parallelism,
                                   use_threads=use_threads)
        rows = executor.run(plan.to_operator(self.session.catalog), ctx)
        self.session.observe_execution(self, ctx)
        return rows


class QuerySession:
    """Prepare, cache and execute queries against one catalog.

    One session per serving process; safe to reuse across queries.  The
    underlying :class:`Optimizer` is rebuilt only when a plan-cache miss
    forces a fresh search.
    """

    def __init__(self, catalog: Catalog, strategy: str = "pyro-o",
                 config: Optional[OptimizerConfig] = None,
                 cache_capacity: int = 128,
                 cache_ttl: Optional[float] = None,
                 cache: Optional[PlanCache[PhysicalPlan]] = None,
                 feedback: Optional[FeedbackConfig] = None,
                 **overrides: Any) -> None:
        self.catalog = catalog
        self.optimizer = Optimizer(catalog, strategy, config, **overrides)
        #: *cache* may be a shared, cross-session instance (the serving
        #: tier passes one :class:`~repro.service.plan_cache.SharedPlanCache`
        #: to every session it creates); ``cache_capacity``/``cache_ttl``
        #: then belong to the shared cache's owner and are ignored here.
        self.cache: PlanCache[PhysicalPlan] = cache if cache is not None \
            else PlanCache(cache_capacity, ttl_seconds=cache_ttl)
        #: Adaptive-statistics feedback; ``None`` (the default) disables
        #: drift detection entirely — see :mod:`repro.service.feedback`.
        self.feedback = feedback
        self.metrics = SessionMetrics()

    # -- public API ------------------------------------------------------------------
    def prepare(self, query: TUnion[Query, LogicalExpr],
                required_order: Optional[SortOrder] = None,
                parallelism: int = 1) -> PreparedQuery:
        """Plan (or fetch the cached plan for) a query.

        ``parallelism > 1`` plans for a sharded execution: enforcers may
        be placed per shard under a MergeExchange when the cost model
        favours it, so the fan-out is part of the cache key — the same
        logical query prepared at a different parallelism is a different
        physical plan.
        """
        # The "plan" span covers cache lookup + (on a miss) the full
        # optimizer pipeline; its children are the four stage spans the
        # Optimizer emits.  No-op when no query trace is active.
        with child_span("plan") as span:
            prepared = self._prepare(query, required_order, parallelism)
            span.tag(cache_hit=prepared.from_cache,
                     fingerprint=prepared.fingerprint)
        return prepared

    def _prepare(self, query: TUnion[Query, LogicalExpr],
                 required_order: Optional[SortOrder] = None,
                 parallelism: int = 1) -> PreparedQuery:
        if parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        # The same normalization Optimizer.optimize applies, so the cache
        # key always describes exactly the tree that gets planned.
        expr, required = split_required_order(query, required_order)
        fp = logical_fingerprint(expr, required)
        if parallelism > 1:
            fp = f"{fp}#p{parallelism}"
        # Like the parallelism salt: plans from different join-order
        # enumerators are different physical plans for the same logical
        # query, so they must never collide in a (shared) cache.  The
        # default exhaustive enumerator salts with "" — pre-pipeline
        # fingerprints stay valid.
        enumerator_salt = self.optimizer.pipeline.cache_salt
        if enumerator_salt:
            fp = f"{fp}#j{enumerator_salt}"
        tables = referenced_tables(expr)
        # Per-table invalidation: the token covers only the tables this
        # query reads, so refreshes elsewhere leave the entry valid.
        version = self.catalog.table_versions(tables)
        self.metrics.prepares += 1
        plan = self.cache.get(fp, version)
        if plan is not None:
            return PreparedQuery(self, plan, fp, required, from_cache=True,
                                 tables=tables, parallelism=parallelism)
        start = time.perf_counter()
        plan = self.optimizer.optimize(expr, required, parallelism=parallelism)
        self.metrics.optimize_seconds += time.perf_counter() - start
        self.metrics.optimizations += 1
        telemetry = self.optimizer.last_telemetry
        self.metrics.enumerator_seconds += telemetry.get(
            "enumerator_seconds", 0.0)
        self.metrics.join_order_candidates += int(telemetry.get(
            "join_order_candidates", 0))
        self.metrics.goals_examined += int(telemetry.get("goals_examined", 0))
        self.metrics.goals_pruned += int(telemetry.get("goals_pruned", 0))
        self.metrics.memo_hits += int(telemetry.get("memo_hits", 0))
        self.metrics.failure_memo_hits += int(telemetry.get(
            "failure_memo_hits", 0))
        if parallelism > 1:
            gathers = plan.find_all("MergeExchange")
            if any(c.op == "MergeJoin" for g in gathers for c in g.children) \
                    or any(c.op in ("MergeJoin", "HashJoin")
                           for g in plan.find_all("ExchangeUnion")
                           for c in g.children):
                self.metrics.sharded_join_plans += 1
            if plan.find_all("SortedCombine"):
                self.metrics.sharded_agg_plans += 1
            if any(c.op == "Dedup" for g in gathers for c in g.children):
                self.metrics.sharded_distinct_plans += 1
            if gathers:
                self.metrics.shard_merge_plans += 1
            elif any(shardable_enforcement_input(node.children[0], self.catalog,
                                                 parallelism)
                     for node in plan.walk()
                     if node.op in ("Sort", "PartialSort")):
                # Only count sorts where a per-shard alternative actually
                # existed and lost on cost — interior sorts over
                # unshardable shapes (join inputs etc.) are not decisions.
                self.metrics.post_union_sort_plans += 1
        # Compile the plan's hot expressions once, here at prepare time:
        # cached-plan re-executions (and repeated executes of this
        # PreparedQuery) lower straight from the attached bundles with
        # zero recompilation.  Parameterized nodes stay bundle-free and
        # compile at bind/execute time, exactly as before.
        plan = attach_plan_kernels(plan)
        self.cache.put(fp, plan, version)
        return PreparedQuery(self, plan, fp, required, from_cache=False,
                             tables=tables, parallelism=parallelism)

    def execute(self, query: TUnion[Query, LogicalExpr],
                required_order: Optional[SortOrder] = None,
                ctx: Optional[ExecutionContext] = None,
                parallelism: int = 1, batch_size: Optional[int] = None,
                use_threads: bool = False, **binds: Any) -> list[tuple]:
        """Prepare (served from cache when possible) and execute."""
        return self.prepare(query, required_order, parallelism=parallelism).execute(
            ctx, batch_size=batch_size, use_threads=use_threads, **binds)

    def explain(self, query: TUnion[Query, LogicalExpr],
                required_order: Optional[SortOrder] = None,
                parallelism: int = 1) -> str:
        return self.prepare(query, required_order, parallelism=parallelism).explain()

    def explain_analyze(self, query: TUnion[Query, LogicalExpr],
                        required_order: Optional[SortOrder] = None,
                        parallelism: int = 1,
                        batch_size: Optional[int] = None,
                        use_threads: bool = False,
                        **binds: Any) -> ExplainAnalyze:
        """Prepare, *actually execute*, and annotate the plan tree with
        measured rows, wall time and batch counts per operator —
        estimated vs actual, PostgreSQL's ``EXPLAIN ANALYZE``.

        The execution is a real one (feedback, kernels, metering all
        engaged) with ``meter_timing`` on; the result rows ride along on
        the returned :class:`~repro.obs.analyze.ExplainAnalyze` as
        ``.rows`` so callers don't pay for a second run.
        """
        prepared = self.prepare(query, required_order,
                                parallelism=parallelism)
        ctx = ExecutionContext(self.catalog, batch_size=batch_size,
                               meter_timing=True)
        start = time.perf_counter()
        rows = prepared.execute(ctx, use_threads=use_threads, **binds)
        wall = time.perf_counter() - start
        return ExplainAnalyze(
            prepared.plan,
            {tag: (c[0], c[1]) for tag, c in ctx.operator_rows.items()},
            {tag: (c[0], c[1]) for tag, c in ctx.operator_times.items()},
            wall, len(rows), rows=rows)

    def cost_of(self, query: TUnion[Query, LogicalExpr],
                required_order: Optional[SortOrder] = None,
                parallelism: int = 1) -> float:
        return self.prepare(query, required_order,
                            parallelism=parallelism).total_cost

    def invalidate_plans(self) -> int:
        """Manually drop every cached plan (bulk loads, DDL scripts)."""
        return self.cache.invalidate_all()

    # -- adaptive-statistics feedback ------------------------------------------------
    def observe_execution(self, prepared: PreparedQuery,
                          ctx: ExecutionContext) -> int:
        """Inspect one execution's per-operator row tallies for drift.

        For every scan meter whose actual row count left the configured
        drift band, the live table is consulted: only when its *declared*
        ``stats.num_rows`` also disagrees with the materialised row count
        (i.e. the catalog statistics themselves are stale — not a benign
        early-terminated scan under a ``Limit``) is
        ``catalog.refresh_stats`` invoked.  The refresh re-measures
        distinct sketches and row counts from the rows and bumps the
        table's ``stats_version``, invalidating exactly the cached plans
        that read it; the next ``prepare`` re-optimizes cost-first.

        Returns the number of tables refreshed.  No-op (returning 0)
        when the session was built without a :class:`FeedbackConfig`.
        """
        feedback = self.feedback
        if feedback is None:
            return 0
        self.metrics.drift_checks += 1
        refreshed = 0
        seen: set[str] = set()
        for tag, cell in ctx.operator_rows.items():
            table_name = scan_table(tag)
            if table_name is None or table_name in seen:
                continue
            seen.add(table_name)
            estimated, actual = cell[0], cell[1]
            if not feedback.drifted(estimated, actual):
                continue
            self.metrics.drift_events += 1
            if not self.catalog.has_table(table_name):
                continue
            table = self.catalog.table(table_name)
            if not table.is_materialized:
                continue  # stats-only tables have no ground truth to re-measure
            if not feedback.drifted(table.stats.num_rows, len(table)):
                continue  # declared stats match reality; drift was per-run noise
            self.catalog.refresh_stats(table_name)
            self.metrics.feedback_refreshes += 1
            refreshed += 1
        return refreshed

    def stats(self) -> dict[str, Any]:
        """Serving-side observability: session counters + cache counters.

        Flat, JSON-friendly dict — what a /metrics endpoint would expose.
        """
        out: dict[str, Any] = {
            "prepares": self.metrics.prepares,
            "optimizations": self.metrics.optimizations,
            "executions": self.metrics.executions,
            "optimize_seconds": self.metrics.optimize_seconds,
            "shard_merge_plans": self.metrics.shard_merge_plans,
            "post_union_sort_plans": self.metrics.post_union_sort_plans,
            "sharded_join_plans": self.metrics.sharded_join_plans,
            "sharded_agg_plans": self.metrics.sharded_agg_plans,
            "sharded_distinct_plans": self.metrics.sharded_distinct_plans,
            "join_enumerator": self.optimizer.pipeline.enumerator.name,
            "enumerator_seconds": self.metrics.enumerator_seconds,
            "join_order_candidates": self.metrics.join_order_candidates,
            "goals_examined": self.metrics.goals_examined,
            "goals_pruned": self.metrics.goals_pruned,
            "memo_hits": self.metrics.memo_hits,
            "failure_memo_hits": self.metrics.failure_memo_hits,
            "drift_checks": self.metrics.drift_checks,
            "drift_events": self.metrics.drift_events,
            "feedback_refreshes": self.metrics.feedback_refreshes,
            "cache_size": len(self.cache),
            "cache_capacity": self.cache.capacity,
            "cache_ttl_seconds": self.cache.ttl_seconds,
        }
        for name, value in self.cache.stats.as_dict().items():
            out[f"cache_{name}"] = value
        # Kernel/columnar counters are process-global (the kernel cache
        # and batch telemetry are shared across sessions), surfaced here
        # so one serving process's /metrics shows compilation behaviour.
        out.update(kernel_stats())
        return out
