"""Serving-side telemetry: admission counters, latency quantiles, worker
utilization, per-tenant accounting, and the execution circuit breaker.

Everything here is designed for one writer pattern — many threads
recording, one occasional reader — so every mutation takes the metrics
lock and the reader gets a consistent snapshot from :meth:`as_dict`.
The numbers are exactly what a ``/metrics`` endpoint of a query-serving
tier exposes: queue depth and in-flight gauges, admission outcomes
(admitted / rejected / deadline timeouts / failures), the latency
distribution (p50/p95 over a bounded reservoir of recent queries), and
per-backend busy time from which worker utilization is derived.

**Outcome exclusivity.**  Every admitted query owns one
:class:`QueryOutcome` handle; whoever resolves the query first — the
dispatch thread (completed / failed / queued-deadline expiry) or the
client wait path (timeout, abandonment) — *claims* the handle under the
metrics lock and is the only party that counts.  This is what makes

    submitted == completed + failed + timeouts
               + rejected_queue_full + rejected_quota + rejected_circuit

reconcile exactly at quiescence: earlier versions double-counted a
queued-deadline expiry as both ``failed`` and ``timeouts``, and counted
a client-abandoned still-running query as ``completed`` after already
counting its ``timeout``.

**Backpressure.**  :meth:`ServerMetrics.retry_after` turns the current
queue depth and observed p50 latency into the cooperative retry hint a
rejection carries (see ``QueryRejected.retry_after``): the estimated
time until the wait queue drains one scheduling round, clamped to a
sane range.
"""

from __future__ import annotations

import math
import threading
import time
from bisect import bisect_left
from dataclasses import dataclass, field, fields
from typing import Callable, Optional

#: The tenant used when a client does not identify itself.
DEFAULT_TENANT = "default"


def _log_spaced_bounds(lowest: float = 1e-4, highest: float = 60.0,
                       factor: float = 2 ** 0.25) -> tuple[float, ...]:
    """Histogram bucket upper bounds from *lowest* to past *highest*,
    each ``factor`` apart (log-spaced): ~77 buckets at the defaults."""
    bounds = [lowest]
    while bounds[-1] < highest:
        bounds.append(bounds[-1] * factor)
    return tuple(bounds)


#: Shared by every tracker: 0.1ms … 60s at 2**0.25 (≈19%) spacing, so a
#: quantile read off the histogram is within half a bucket (~9%) of the
#: exact sample quantile — plenty for latency telemetry.
_LATENCY_BOUNDS = _log_spaced_bounds()


class LatencyTracker:
    """Latency quantiles over a fixed set of log-spaced histogram buckets.

    Replaces the earlier ring-buffer design whose ``quantile`` re-sorted
    a 2048-sample window on **every** ``stats()`` read: ``record`` is one
    bisect into ~77 bounds, ``quantile`` walks the bounded cumulative
    counts and interpolates linearly inside the landing bucket (clamped
    to the observed min/max, so small-n reads stay exact-ish).  The same
    buckets back the Prometheus exposition (:meth:`buckets`).

    *window* is accepted for backward compatibility; the histogram
    covers all observations, not a sliding window.
    """

    def __init__(self, window: int = 2048) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self._counts = [0] * (len(_LATENCY_BOUNDS) + 1)
        self.count = 0
        self.total_seconds = 0.0
        self._min = math.inf
        self._max = 0.0

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total_seconds += seconds
        if seconds < self._min:
            self._min = seconds
        if seconds > self._max:
            self._max = seconds
        # bisect_left: a value equal to a bound lands in that bound's
        # bucket — Prometheus ``le`` (cumulative ≤) semantics.
        self._counts[bisect_left(_LATENCY_BOUNDS, seconds)] += 1

    def quantile(self, q: float) -> float:
        """The *q*-quantile (0..1) estimate; 0.0 if empty."""
        if not self.count:
            return 0.0
        target = q * self.count
        cum = 0
        for i, n in enumerate(self._counts):
            if not n:
                continue
            if cum + n >= target:
                lo = _LATENCY_BOUNDS[i - 1] if i else self._min
                hi = _LATENCY_BOUNDS[i] if i < len(_LATENCY_BOUNDS) \
                    else self._max
                frac = min(1.0, max(0.0, (target - cum) / n))
                value = lo + (hi - lo) * frac
                return max(self._min, min(self._max, value))
            cum += n
        return self._max

    def buckets(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper_bound_seconds, count)`` pairs with
        Prometheus ``le`` semantics, ending with ``(inf, total)``."""
        out = []
        cum = 0
        for bound, n in zip(_LATENCY_BOUNDS, self._counts):
            cum += n
            out.append((bound, cum))
        out.append((math.inf, self.count))
        return out

    @property
    def mean(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0


@dataclass
class TenantMetrics:
    """Admission outcomes for one tenant (same taxonomy as the server)."""

    submitted: int = 0
    admitted: int = 0
    rejected_queue_full: int = 0
    rejected_quota: int = 0
    rejected_circuit: int = 0
    completed: int = 0
    failed: int = 0
    timeouts: int = 0
    #: Gauge: queued + in-flight queries right now (the quantity the
    #: weighted-fair quota bounds).
    occupancy: int = 0
    #: Completed-query latency distribution for this tenant alone.
    latency: LatencyTracker = field(default_factory=LatencyTracker)

    def as_dict(self) -> dict:
        out = {f.name: getattr(self, f.name) for f in fields(self)
               if f.name != "latency"}
        out["latency_p50_ms"] = self.latency.quantile(0.50) * 1000.0
        out["latency_p95_ms"] = self.latency.quantile(0.95) * 1000.0
        return out


class QueryOutcome:
    """One admitted query's outcome slot; claimed exactly once.

    Created by :meth:`ServerMetrics.try_admit` and threaded through both
    the dispatch body and the client wait path.  ``claim`` must only be
    called with the metrics lock held (ServerMetrics does this).
    """

    __slots__ = ("tenant", "resolved")

    def __init__(self, tenant: str) -> None:
        self.tenant = tenant
        self.resolved = False

    def claim(self) -> bool:
        if self.resolved:
            return False
        self.resolved = True
        return True


class CircuitOpenState(Exception):
    """Internal marker — not raised; see server.CircuitOpen."""


class CircuitBreaker:
    """Consecutive-failure circuit breaker around the execution backend.

    States: **closed** (normal service) → **open** after
    ``failure_threshold`` consecutive backend failures (every submission
    is rejected for ``reset_timeout`` seconds) → **half-open** (at most
    ``half_open_max`` probe queries admitted) → **closed** again on a
    probe success, or straight back to **open** on a probe failure.

    Only *backend* failures trip the breaker — a malformed query or an
    expired deadline says nothing about the backend's health.  Thread-
    safe; ``clock`` is injectable for deterministic tests.
    """

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"

    def __init__(self, failure_threshold: int = 5,
                 reset_timeout: float = 1.0,
                 half_open_max: int = 1,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout <= 0:
            raise ValueError("reset_timeout must be positive")
        if half_open_max < 1:
            raise ValueError("half_open_max must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.half_open_max = half_open_max
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        #: Transition counters (observable through ``stats()``).
        self.opens = 0
        self.half_opens = 0
        self.closes = 0

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _maybe_half_open(self) -> None:
        """Lock held: open → half-open once the reset timeout elapsed."""
        if self._state == self.OPEN and \
                self._clock() - self._opened_at >= self.reset_timeout:
            self._state = self.HALF_OPEN
            self._probes_in_flight = 0
            self.half_opens += 1

    def check(self) -> Optional[float]:
        """Gate one submission.

        Returns ``None`` when the query may proceed (and, in half-open,
        reserves a probe slot), or the suggested retry-after in seconds
        when the circuit holds it back.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == self.CLOSED:
                return None
            if self._state == self.HALF_OPEN:
                if self._probes_in_flight < self.half_open_max:
                    self._probes_in_flight += 1
                    return None
                # Probes already in flight: come back when they resolve.
                return self.reset_timeout / 2.0
            remaining = self.reset_timeout - (self._clock() - self._opened_at)
            return max(remaining, 0.001)

    def abort_probe(self) -> None:
        """A submission that reserved a half-open probe slot never made
        it to the backend (admission rejected it): release the slot so
        the breaker cannot get stuck half-open with phantom probes."""
        with self._lock:
            if self._state == self.HALF_OPEN and self._probes_in_flight > 0:
                self._probes_in_flight -= 1

    def record_success(self) -> None:
        with self._lock:
            if self._state == self.HALF_OPEN:
                self._state = self.CLOSED
                self.closes += 1
                self._probes_in_flight = 0
            self._consecutive_failures = 0

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            if self._state == self.HALF_OPEN:
                self._trip()
            elif self._state == self.CLOSED and \
                    self._consecutive_failures >= self.failure_threshold:
                self._trip()

    def _trip(self) -> None:
        """Lock held: move to open and start the reset clock."""
        self._state = self.OPEN
        self._opened_at = self._clock()
        self._probes_in_flight = 0
        self.opens += 1

    def as_dict(self) -> dict:
        with self._lock:
            self._maybe_half_open()
            return {
                "circuit_state": self._state,
                "circuit_consecutive_failures": self._consecutive_failures,
                "circuit_opens": self.opens,
                "circuit_half_opens": self.half_opens,
                "circuit_closes": self.closes,
            }


class ServerMetrics:
    """Thread-safe counters and gauges for one :class:`QueryServer`."""

    def __init__(self, latency_window: int = 2048) -> None:
        self._lock = threading.Lock()
        self.latency = LatencyTracker(latency_window)
        #: Admission outcomes.  ``submitted`` equals the sum of the three
        #: rejection counters plus ``admitted``; every admitted query
        #: eventually resolves to exactly one of ``completed`` /
        #: ``failed`` / ``timeouts`` (see :class:`QueryOutcome`).
        self.submitted = 0
        self.admitted = 0
        self.rejected_queue_full = 0
        self.rejected_quota = 0
        self.rejected_circuit = 0
        self.timeouts = 0
        self.completed = 0
        self.failed = 0
        #: A query that resolved after its client stopped waiting (the
        #: client already claimed the timeout): informational only —
        #: never double-counted into completed/failed.
        self.abandoned = 0
        #: Gauges.
        self.queued = 0          # admitted, waiting for a dispatch slot
        self.in_flight = 0       # currently executing
        self.max_queued_seen = 0
        self.max_in_flight_seen = 0
        #: Backend busy time (seconds of query execution, summed across
        #: dispatch slots) — utilization = busy / (wall · slots).
        self.busy_seconds = 0.0
        self._started_at = time.monotonic()
        self._tenants: dict[str, TenantMetrics] = {}

    def _tenant(self, name: str) -> TenantMetrics:
        """Lock held."""
        tenant = self._tenants.get(name)
        if tenant is None:
            tenant = self._tenants[name] = TenantMetrics()
        return tenant

    # -- admission ------------------------------------------------------------------
    def try_admit(self, queue_limit: int, *,
                  tenant: str = DEFAULT_TENANT,
                  capacity: Optional[int] = None,
                  weight_of: Optional[Callable[[str], float]] = None,
                  ) -> tuple[str, Optional[QueryOutcome]]:
        """Count a submission and decide admission.

        Returns ``("admitted", outcome)``, ``("queue_full", None)`` or
        ``("quota", None)``.  The quota check implements weighted-fair
        slot allocation over *capacity* total slots (dispatch slots +
        wait queue): a tenant's entitlement is its weight's share of
        capacity **over the currently active tenants** (idle tenants
        reserve nothing), and it only binds while the wait queue is at
        least half full — below that the pool is uncontended and any
        tenant may burst.
        """
        with self._lock:
            self.submitted += 1
            t = self._tenant(tenant)
            t.submitted += 1
            if self.queued >= queue_limit:
                self.rejected_queue_full += 1
                t.rejected_queue_full += 1
                return "queue_full", None
            if capacity is not None and weight_of is not None \
                    and 2 * self.queued >= queue_limit:
                active = {name for name, m in self._tenants.items()
                          if m.occupancy > 0}
                active.add(tenant)
                if len(active) > 1:
                    total_weight = sum(weight_of(name) for name in active)
                    share = capacity * weight_of(tenant) / total_weight
                    entitlement = max(1, math.floor(share))
                    if t.occupancy >= entitlement:
                        self.rejected_quota += 1
                        t.rejected_quota += 1
                        return "quota", None
            self.admitted += 1
            t.admitted += 1
            self.queued += 1
            t.occupancy += 1
            self.max_queued_seen = max(self.max_queued_seen, self.queued)
            return "admitted", QueryOutcome(tenant)

    def count_rejected_circuit(self, tenant: str = DEFAULT_TENANT) -> None:
        """A submission turned away by the open circuit breaker."""
        with self._lock:
            self.submitted += 1
            self.rejected_circuit += 1
            t = self._tenant(tenant)
            t.submitted += 1
            t.rejected_circuit += 1

    def unqueue(self, outcome: Optional[QueryOutcome] = None) -> None:
        """An admitted query left the wait queue without running (its
        dispatch future was cancelled before a slot picked it up).  Only
        the gauges move; the client wait path claims the outcome."""
        with self._lock:
            self.queued -= 1
            if outcome is not None:
                self._tenant(outcome.tenant).occupancy -= 1

    def abandon_queued(self, outcome: QueryOutcome) -> None:
        """Admission succeeded but the dispatch submission itself failed
        (shutdown race): release the queue slot and resolve the query as
        failed so no slot — or count — leaks."""
        with self._lock:
            self.queued -= 1
            self._tenant(outcome.tenant).occupancy -= 1
            if outcome.claim():
                self.failed += 1
                self._tenant(outcome.tenant).failed += 1

    def start_execution(self, outcome: Optional[QueryOutcome] = None) -> None:
        with self._lock:
            self.queued -= 1
            self.in_flight += 1
            self.max_in_flight_seen = max(self.max_in_flight_seen,
                                          self.in_flight)

    def finish_execution(self, seconds: float, disposition: str,
                         outcome: Optional[QueryOutcome] = None) -> None:
        """The dispatch body finished one admitted query.

        *disposition* is ``"completed"``, ``"failed"`` or ``"timeout"``
        (the queued-deadline expiry).  Gauges and busy time always move;
        the outcome counter moves only if this query was not already
        claimed by the client wait path (timeout/abandonment).
        """
        with self._lock:
            self.in_flight -= 1
            self.busy_seconds += seconds
            tenant = self._tenant(outcome.tenant) if outcome is not None \
                else self._tenant(DEFAULT_TENANT)
            if outcome is not None:
                tenant.occupancy -= 1
            if outcome is not None and not outcome.claim():
                # The client stopped waiting and already counted the
                # timeout; this late result is discarded, not recounted.
                self.abandoned += 1
                return
            if disposition == "completed":
                self.completed += 1
                tenant.completed += 1
                self.latency.record(seconds)
                tenant.latency.record(seconds)
            elif disposition == "timeout":
                self.timeouts += 1
                tenant.timeouts += 1
            else:
                self.failed += 1
                tenant.failed += 1

    def count_timeout(self, outcome: Optional[QueryOutcome] = None) -> bool:
        """The client wait path hit its deadline.  Counts the timeout
        only if the query was not already resolved (e.g. by the dispatch
        body's own queued-deadline expiry) — outcomes stay exclusive."""
        with self._lock:
            if outcome is not None and not outcome.claim():
                return False
            self.timeouts += 1
            tenant = outcome.tenant if outcome is not None else DEFAULT_TENANT
            self._tenant(tenant).timeouts += 1
            return True

    # -- backpressure ---------------------------------------------------------------
    def retry_after(self, max_inflight: int,
                    floor: float = 0.05, ceiling: float = 30.0) -> float:
        """Cooperative retry hint for a rejected submission.

        Estimates the time until the wait queue drains one scheduling
        round: (queued + in-flight) queries ahead, served ``max_inflight``
        at a time, each taking about the observed p50 latency (mean as
        the cold-start fallback).  Clamped to ``[floor, ceiling]``.
        """
        with self._lock:
            backlog = self.queued + self.in_flight
            per_query = self.latency.quantile(0.50) or self.latency.mean
        if per_query <= 0.0:
            per_query = floor
        rounds = math.ceil((backlog + 1) / max(1, max_inflight))
        return min(ceiling, max(floor, rounds * per_query))

    # -- reading -------------------------------------------------------------------
    def utilization(self, slots: int) -> float:
        """Fraction of available dispatch-slot time spent executing."""
        elapsed = time.monotonic() - self._started_at
        if elapsed <= 0 or slots < 1:
            return 0.0
        return min(1.0, self.busy_seconds / (elapsed * slots))

    def tenants_dict(self) -> dict[str, dict]:
        with self._lock:
            return {name: m.as_dict() for name, m in self._tenants.items()}

    def as_dict(self, slots: int) -> dict:
        with self._lock:
            return {
                "submitted": self.submitted,
                "admitted": self.admitted,
                "rejected_queue_full": self.rejected_queue_full,
                "rejected_quota": self.rejected_quota,
                "rejected_circuit": self.rejected_circuit,
                "timeouts": self.timeouts,
                "completed": self.completed,
                "failed": self.failed,
                "abandoned": self.abandoned,
                "queue_depth": self.queued,
                "in_flight": self.in_flight,
                "max_queue_depth": self.max_queued_seen,
                "max_in_flight": self.max_in_flight_seen,
                "latency_p50_ms": self.latency.quantile(0.50) * 1000.0,
                "latency_p95_ms": self.latency.quantile(0.95) * 1000.0,
                "latency_mean_ms": self.latency.mean * 1000.0,
                "latency_count": self.latency.count,
                "latency_sum_seconds": self.latency.total_seconds,
                "latency_histogram": self.latency.buckets(),
                "busy_seconds": self.busy_seconds,
                "worker_utilization": self.utilization(slots),
            }
