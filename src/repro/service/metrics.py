"""Serving-side telemetry: admission counters, latency quantiles, worker
utilization.

Everything here is designed for one writer pattern — many threads
recording, one occasional reader — so every mutation takes the metrics
lock and the reader gets a consistent snapshot from :meth:`as_dict`.
The numbers are exactly what a ``/metrics`` endpoint of a query-serving
tier exposes: queue depth and in-flight gauges, admission outcomes
(admitted / rejected-queue-full / deadline timeouts / failures), the
latency distribution (p50/p95 over a bounded reservoir of recent
queries), and per-backend busy time from which worker utilization is
derived.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Optional


class LatencyTracker:
    """Latency quantiles over a bounded window of recent observations.

    Keeps the last *window* latencies in a ring buffer; quantiles are
    computed on demand with linear interpolation (the common
    "nearest-rank with interpolation" estimator).  Bounded memory, no
    per-record sorting — record is O(1), quantile is O(window·log
    window) and only paid by `stats()` readers.
    """

    def __init__(self, window: int = 2048) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self._ring: list[float] = []
        self._next = 0
        self.count = 0
        self.total_seconds = 0.0

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total_seconds += seconds
        if len(self._ring) < self.window:
            self._ring.append(seconds)
        else:
            self._ring[self._next] = seconds
            self._next = (self._next + 1) % self.window

    def quantile(self, q: float) -> float:
        """The *q*-quantile (0..1) of the recorded window; 0.0 if empty."""
        if not self._ring:
            return 0.0
        ordered = sorted(self._ring)
        rank = q * (len(ordered) - 1)
        lo = math.floor(rank)
        hi = math.ceil(rank)
        if lo == hi:
            return ordered[lo]
        frac = rank - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    @property
    def mean(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0


class ServerMetrics:
    """Thread-safe counters and gauges for one :class:`QueryServer`."""

    def __init__(self, latency_window: int = 2048) -> None:
        self._lock = threading.Lock()
        self.latency = LatencyTracker(latency_window)
        #: Admission outcomes.
        self.submitted = 0
        self.admitted = 0
        self.rejected_queue_full = 0
        self.timeouts = 0
        self.completed = 0
        self.failed = 0
        #: Gauges.
        self.queued = 0          # admitted, waiting for a dispatch slot
        self.in_flight = 0       # currently executing
        self.max_queued_seen = 0
        self.max_in_flight_seen = 0
        #: Backend busy time (seconds of query execution, summed across
        #: dispatch slots) — utilization = busy / (wall · slots).
        self.busy_seconds = 0.0
        self._started_at = time.monotonic()

    # -- admission ------------------------------------------------------------------
    def try_admit(self, queue_limit: int) -> bool:
        """Count a submission; admit unless the wait queue is full."""
        with self._lock:
            self.submitted += 1
            if self.queued >= queue_limit:
                self.rejected_queue_full += 1
                return False
            self.admitted += 1
            self.queued += 1
            self.max_queued_seen = max(self.max_queued_seen, self.queued)
            return True

    def unqueue(self) -> None:
        """An admitted query left the wait queue without running (its
        deadline expired first, or submission failed)."""
        with self._lock:
            self.queued -= 1

    def start_execution(self) -> None:
        with self._lock:
            self.queued -= 1
            self.in_flight += 1
            self.max_in_flight_seen = max(self.max_in_flight_seen,
                                          self.in_flight)

    def finish_execution(self, seconds: float, ok: bool) -> None:
        with self._lock:
            self.in_flight -= 1
            self.busy_seconds += seconds
            if ok:
                self.completed += 1
                self.latency.record(seconds)
            else:
                self.failed += 1

    def count_timeout(self) -> None:
        with self._lock:
            self.timeouts += 1

    # -- reading -------------------------------------------------------------------
    def utilization(self, slots: int) -> float:
        """Fraction of available dispatch-slot time spent executing."""
        elapsed = time.monotonic() - self._started_at
        if elapsed <= 0 or slots < 1:
            return 0.0
        return min(1.0, self.busy_seconds / (elapsed * slots))

    def as_dict(self, slots: int) -> dict:
        with self._lock:
            return {
                "submitted": self.submitted,
                "admitted": self.admitted,
                "rejected_queue_full": self.rejected_queue_full,
                "timeouts": self.timeouts,
                "completed": self.completed,
                "failed": self.failed,
                "queue_depth": self.queued,
                "in_flight": self.in_flight,
                "max_queue_depth": self.max_queued_seen,
                "max_in_flight": self.max_in_flight_seen,
                "latency_p50_ms": self.latency.quantile(0.50) * 1000.0,
                "latency_p95_ms": self.latency.quantile(0.95) * 1000.0,
                "latency_mean_ms": self.latency.mean * 1000.0,
                "busy_seconds": self.busy_seconds,
                "worker_utilization": self.utilization(slots),
            }
