"""The cooperative client: retries, backoff, rate limiting.

:class:`QueryServer` sheds load with typed, hinted rejections
(:class:`~repro.service.server.QueryRejected` carrying ``retry_after``,
:class:`~repro.service.server.CircuitOpen`, per-query
:class:`~repro.service.server.QueryTimeout`); this module supplies the
other half of the backpressure protocol — a client that *cooperates*
instead of hammering:

* **transient classification** — rejections and timeouts are worth
  retrying (the server explicitly asked us to come back later); plan,
  bind and parameter errors are not (the same query will fail the same
  way forever);
* **capped exponential backoff with full jitter** — attempt *n* sleeps
  ``uniform(0, min(max_delay, base · multiplier**n))`` (full jitter, the
  AWS-architecture-blog shape that decorrelates retry storms), raised to
  the server's ``retry_after`` hint when one was given — the server
  knows its queue better than our exponential does;
* **token-bucket rate limiting** — every attempt (first try and retries
  alike) takes one token from a shared bucket of ``burst`` capacity
  refilled at ``rate_limit`` tokens/second, so a fleet of client threads
  sharing one :class:`RetryingClient` cannot exceed the provisioned
  request rate even when the server is healthy.

One :class:`RetryingClient` serves both worlds — ``execute`` for plain
threads, ``await submit`` for asyncio tasks — sharing a single
:class:`RetryPolicy` and token bucket, so the sync and async halves of
an application drain the same budget.

The clock, RNG and sleep functions are injectable, which the tests use
to pin backoff sequences deterministically without real sleeping.
"""

from __future__ import annotations

import asyncio
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Optional

from .server import QueryRejected, QueryResult, QueryServer, QueryTimeout

__all__ = ["RetryPolicy", "RetryingClient", "RetriesExhausted",
           "TokenBucket", "is_transient"]


class RetriesExhausted(RuntimeError):
    """The retry budget ran out; ``last_error`` is the final failure."""

    def __init__(self, message: str, last_error: BaseException) -> None:
        super().__init__(message)
        self.last_error = last_error


def is_transient(exc: BaseException) -> bool:
    """The default transient-error classifier.

    Admission rejections (queue full, quota, circuit open — all
    :class:`QueryRejected`, each carrying a ``retry_after`` hint) and
    deadline misses (:class:`QueryTimeout`) are load conditions: the
    same query succeeds once capacity frees.  Everything else — unknown
    tables, bad parameter bindings, optimizer errors — is deterministic
    and retrying would only add load.
    """
    return isinstance(exc, (QueryRejected, QueryTimeout))


@dataclass
class RetryPolicy:
    """Shared knobs for the sync and async retry loops."""

    #: Total tries including the first (>= 1).
    max_attempts: int = 6
    #: First backoff cap in seconds; the cap doubles (``multiplier``)
    #: per retry up to ``max_delay``.
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    #: Steady-state attempt rate in attempts/second (None = unlimited)
    #: and the burst the bucket may accumulate while idle.
    rate_limit: Optional[float] = None
    burst: int = 1
    #: Predicate deciding which errors are worth retrying.
    classify: Callable[[BaseException], bool] = field(default=is_transient)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ValueError("need 0 <= base_delay <= max_delay")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.rate_limit is not None and self.rate_limit <= 0:
            raise ValueError("rate_limit must be positive (or None)")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")

    def backoff(self, attempt: int, retry_after: Optional[float],
                rng: random.Random) -> float:
        """Sleep before retry number *attempt* (0-based).

        Full jitter over the exponentially-growing cap, raised to the
        server's ``retry_after`` hint (itself capped at ``max_delay`` so
        a pathological hint cannot park the client forever).
        """
        cap = min(self.max_delay, self.base_delay * self.multiplier ** attempt)
        delay = rng.uniform(0.0, cap)
        if retry_after:
            delay = max(delay, min(retry_after, self.max_delay))
        return delay


class TokenBucket:
    """Thread-safe token bucket (reservation style, monotonic clock).

    ``reserve()`` debits one token and returns how long the caller must
    wait before acting on it — 0.0 when a token was available.  Debiting
    at reservation time (tokens may go negative) keeps concurrent
    callers from all seeing the same "almost full" bucket and bursting
    past the rate together.
    """

    def __init__(self, rate: float, burst: int = 1,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._tokens = float(burst)
        self._updated = clock()
        self._lock = threading.Lock()

    def reserve(self) -> float:
        with self._lock:
            now = self._clock()
            self._tokens = min(float(self.burst),
                               self._tokens + (now - self._updated) * self.rate)
            self._updated = now
            self._tokens -= 1.0
            if self._tokens >= 0.0:
                return 0.0
            return -self._tokens / self.rate


@dataclass
class ClientMetrics:
    """One client's cooperative-behaviour counters."""

    attempts: int = 0
    successes: int = 0
    retries: int = 0
    giveups: int = 0
    permanent_failures: int = 0
    rate_limit_waits: int = 0
    backoff_seconds: float = 0.0
    rate_limit_wait_seconds: float = 0.0

    def as_dict(self) -> dict:
        return {
            "attempts": self.attempts,
            "successes": self.successes,
            "retries": self.retries,
            "giveups": self.giveups,
            "permanent_failures": self.permanent_failures,
            "rate_limit_waits": self.rate_limit_waits,
            "backoff_seconds": self.backoff_seconds,
            "rate_limit_wait_seconds": self.rate_limit_wait_seconds,
        }


class RetryingClient:
    """A :class:`QueryServer` client that honours backpressure.

    Sync threads call :meth:`execute`; asyncio tasks ``await``
    :meth:`submit`.  Both run the same policy — shared token bucket,
    shared counters — so one client object represents one logical
    consumer however many threads and tasks it spans.

    ``sleep`` / ``async_sleep`` / ``rng`` are injectable for tests.
    """

    def __init__(self, server: QueryServer,
                 policy: Optional[RetryPolicy] = None, *,
                 tenant: Optional[str] = None,
                 rng: Optional[random.Random] = None,
                 sleep: Callable[[float], None] = time.sleep,
                 async_sleep: Callable[[float], Awaitable[None]] = asyncio.sleep,
                 ) -> None:
        self.server = server
        self.policy = policy or RetryPolicy()
        self.tenant = tenant
        self.bucket = TokenBucket(self.policy.rate_limit, self.policy.burst) \
            if self.policy.rate_limit is not None else None
        self.metrics = ClientMetrics()
        self._rng = rng or random.Random()
        self._sleep = sleep
        self._async_sleep = async_sleep
        self._lock = threading.Lock()

    # -- the shared per-attempt bookkeeping ----------------------------------------------
    def _pre_attempt(self) -> float:
        """Count the attempt; return the rate-limit wait (0 if none)."""
        wait = self.bucket.reserve() if self.bucket is not None else 0.0
        with self._lock:
            self.metrics.attempts += 1
            if wait > 0.0:
                self.metrics.rate_limit_waits += 1
                self.metrics.rate_limit_wait_seconds += wait
        return wait

    def _on_error(self, exc: BaseException, attempt: int) -> Optional[float]:
        """Classify a failure; return the backoff delay, or None when
        the loop must stop (permanent error or budget exhausted)."""
        if not self.policy.classify(exc):
            with self._lock:
                self.metrics.permanent_failures += 1
            return None
        if attempt >= self.policy.max_attempts - 1:
            with self._lock:
                self.metrics.giveups += 1
            return None
        retry_after = getattr(exc, "retry_after", None)
        with self._lock:
            delay = self.policy.backoff(attempt, retry_after, self._rng)
            self.metrics.retries += 1
            self.metrics.backoff_seconds += delay
        return delay

    def _success(self) -> None:
        with self._lock:
            self.metrics.successes += 1

    # -- sync ---------------------------------------------------------------------------
    def execute(self, query, required_order=None, **kwargs: Any) -> QueryResult:
        """Serve one query from a thread, retrying transient failures.

        Accepts everything :meth:`QueryServer.execute` does (binds,
        ``timeout=``, ``parallelism=`` …).  Raises the last error
        unchanged when it is permanent, or :class:`RetriesExhausted`
        when the attempt budget runs out on a transient one.
        """
        kwargs.setdefault("tenant", self.tenant)
        attempt = 0
        while True:
            wait = self._pre_attempt()
            if wait > 0.0:
                self._sleep(wait)
            try:
                result = self.server.execute(query, required_order, **kwargs)
            except Exception as exc:
                delay = self._on_error(exc, attempt)
                if delay is None:
                    if self.policy.classify(exc):
                        raise RetriesExhausted(
                            f"gave up after {attempt + 1} attempts: {exc}",
                            exc) from exc
                    raise
                self._sleep(delay)
                attempt += 1
            else:
                self._success()
                return result

    # -- async --------------------------------------------------------------------------
    async def submit(self, query, required_order=None,
                     **kwargs: Any) -> QueryResult:
        """Async twin of :meth:`execute` over :meth:`QueryServer.submit`."""
        kwargs.setdefault("tenant", self.tenant)
        attempt = 0
        while True:
            wait = self._pre_attempt()
            if wait > 0.0:
                await self._async_sleep(wait)
            try:
                result = await self.server.submit(query, required_order,
                                                  **kwargs)
            except Exception as exc:
                delay = self._on_error(exc, attempt)
                if delay is None:
                    if self.policy.classify(exc):
                        raise RetriesExhausted(
                            f"gave up after {attempt + 1} attempts: {exc}",
                            exc) from exc
                    raise
                await self._async_sleep(delay)
                attempt += 1
            else:
                self._success()
                return result

    # -- observability ------------------------------------------------------------------
    def stats(self) -> dict:
        """Flat counters (attempts, retries, waits) for this client."""
        with self._lock:
            return self.metrics.as_dict()
