"""Pluggable execution backends for the :class:`QueryServer`.

A backend turns one bound :class:`~repro.optimizer.plans.PhysicalPlan`
into result rows.  Three strategies:

* :class:`SerialBackend` — the in-process
  :class:`~repro.engine.executor.BatchedExecutor`, one plan per dispatch
  thread.  Concurrency across queries comes from the server's dispatch
  pool, but CPython's GIL serializes the CPU work.
* :class:`ThreadBackend` — same, with thread-pool exchange drains
  (``use_threads=True``).  Helps I/O-bound operator backends; pure-Python
  CPU work still serializes.
* :class:`ProcessPoolBackend` — ships per-shard subplans (or whole
  plans, when a plan has no exchange) to worker processes and gathers
  them through the order-preserving merge in the serving process
  (:mod:`repro.engine.subplan`).  This is the one backend that gives the
  sharded enforcers true multi-core parallelism beyond the GIL.

Every backend returns rows **bit-identical** to serial execution: shard
pipelines are cut only at exchange boundaries, workers run the exact
per-shard plans, and the serving-side gather performs the same stable
merge (ties to the lowest shard index) the local exchange would.

The process backend additionally supports **streaming transfer**
(default on): sharded tasks ship their rows back chunk by chunk on a
shared results queue instead of one whole-row-list pickle per future, so
the serving-side merge starts on the fastest shard's first chunk while
the slowest shard is still sorting, and unpickling overlaps with worker
execution.  Workers keep a warm LRU of lowered subplans keyed by task
fingerprint, so the plan-cache steady state (the same physical plan
served repeatedly) skips lowering on warm workers.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from concurrent.futures import BrokenExecutor, CancelledError, ProcessPoolExecutor
from typing import Optional

from ..engine.context import ExecutionContext
from ..engine.executor import BatchedExecutor
from ..obs.trace import active_span, child_span
from ..engine.subplan import (
    ShardStream,
    assemble,
    assemble_streams,
    execute_subplan,
    execute_subplan_stream,
    init_worker,
    shard_subplans,
)
from ..storage.catalog import Catalog
from ..storage.handoff import catalog_payload


class ExecutionBackend:
    """Interface: run one bound physical plan to completion.

    *ctx*, when supplied, receives the execution's counter tallies
    (simulated I/O, comparisons, sort metrics) — for the process
    backend these are the worker tallies folded in shard order, so
    totals match in-process execution's determinism.
    """

    name = "backend"

    def run_plan(self, plan, catalog: Catalog, parallelism: int = 1,
                 batch_size: Optional[int] = None,
                 check_orders: bool = False,
                 ctx: Optional[ExecutionContext] = None) -> list[tuple]:
        raise NotImplementedError

    def close(self) -> None:
        """Release pools/processes; idempotent."""

    def describe(self) -> dict:
        """Configuration and counters for ``QueryServer.stats()``."""
        return {"backend": self.name}


class SerialBackend(ExecutionBackend):
    """In-process batched execution (the ``QuerySession.execute`` path)."""

    name = "serial"

    def __init__(self, use_threads: bool = False) -> None:
        self.use_threads = use_threads

    def run_plan(self, plan, catalog: Catalog, parallelism: int = 1,
                 batch_size: Optional[int] = None,
                 check_orders: bool = False,
                 ctx: Optional[ExecutionContext] = None) -> list[tuple]:
        ctx = ctx or ExecutionContext(catalog, batch_size=batch_size,
                                      check_orders=check_orders)
        executor = BatchedExecutor(parallelism=parallelism,
                                   use_threads=self.use_threads)
        # child_span is ambient: a no-op unless the caller is inside an
        # active trace (the server's execute span), so untraced paths
        # pay one ContextVar read.
        with child_span("local_execute", backend=self.name) as span:
            rows = executor.run(plan.to_operator(catalog), ctx)
            span.tag(rows=len(rows))
        return rows


class ThreadBackend(SerialBackend):
    """Serial backend with thread-pool exchange drains."""

    name = "threads"

    def __init__(self) -> None:
        super().__init__(use_threads=True)


class _StreamRouter:
    """Owns one pool's shared results queue and fans chunks out to the
    per-shard :class:`ShardStream` buffers.

    One daemon thread per pool generation: items are ``(stream_id, seq,
    payload)`` tuples (see
    :func:`~repro.engine.subplan.execute_subplan_stream`); unknown
    stream ids — chunks from an attempt that was cancelled or failed —
    are dropped on the floor.  A queue-level failure (e.g. a worker
    killed mid-pickle corrupting the pipe) fails every registered stream
    so no consumer blocks forever.
    """

    def __init__(self, queue) -> None:
        self.queue = queue
        self._streams: dict[int, ShardStream] = {}
        self._lock = threading.Lock()
        self._next_id = 0
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="shard-stream-router")
        self._thread.start()

    def register(self) -> ShardStream:
        with self._lock:
            stream = ShardStream(self._next_id)
            self._streams[stream.stream_id] = stream
            self._next_id += 1
            return stream

    def unregister(self, stream_id: int) -> None:
        with self._lock:
            self._streams.pop(stream_id, None)

    def _run(self) -> None:
        while True:
            try:
                item = self.queue.get()
            except (EOFError, OSError, ValueError) as exc:
                self._fail_all(exc)
                return
            if item is None:  # stop sentinel from stop()
                self._fail_all(RuntimeError("stream router stopped"))
                return
            stream_id, seq, payload = item
            with self._lock:
                stream = self._streams.get(stream_id)
            if stream is None:
                continue  # stale chunk from a cancelled/failed attempt
            if seq == -1:
                stream.finish(payload)
                self.unregister(stream_id)
            else:
                stream.put(payload)

    def _fail_all(self, exc: BaseException) -> None:
        with self._lock:
            streams, self._streams = list(self._streams.values()), {}
        for stream in streams:
            stream.fail(exc)

    def stop(self) -> None:
        """Post the stop sentinel (drained FIFO, so items already queued
        are still routed first) and join the router thread."""
        try:
            self.queue.put(None)
        except (OSError, ValueError):  # queue already torn down
            pass
        self._thread.join(timeout=5.0)


class _PoolHandle:
    """One pool generation: executor + results queue + router + the
    catalog version it was built against.  Handles are immutable and
    swapped atomically under the backend lock, so a dispatch thread
    holding an old generation keeps a consistent (pool, queue, router)
    triple even while a refresh installs the next one."""

    __slots__ = ("pool", "queue", "router", "version")

    def __init__(self, pool: ProcessPoolExecutor, queue, router: _StreamRouter,
                 version) -> None:
        self.pool = pool
        self.queue = queue
        self.router = router
        self.version = version


class ProcessPoolBackend(ExecutionBackend):
    """Multi-core execution over a pool of worker processes.

    The pool is built once (eagerly, so all workers exist before the
    server's dispatch threads start) with each worker holding its own
    catalog copy from a :func:`~repro.storage.handoff.catalog_payload`
    snapshot.  Per query, the plan's maximal exchanges are cut into
    per-shard tasks (:func:`~repro.engine.subplan.shard_subplans`);
    plans without exchanges ship whole — the pool then provides
    inter-query parallelism instead.

    ``mp_context`` picks the multiprocessing start method; the default
    prefers ``fork`` (cheap worker startup, payload inherited by
    reference) and falls back to the platform default where ``fork`` is
    unavailable.  ``fork`` is only safe while the serving process is
    single-threaded, so it is used exclusively for the **eager initial
    build** (which the constructor performs, before the server's
    dispatch threads exist); any later rebuild — :meth:`refresh` after
    catalog row changes, or the automatic replacement of a broken pool
    — happens mid-traffic and therefore switches to ``spawn``, which
    never inherits another thread's held locks.  :meth:`stale` reports
    whether the catalog version moved since the pool was built.

    Rebuilds are **swap-under-lock**: the replacement pool is built and
    warmed first, the handle pointer is swapped atomically, and the old
    generation retires in the background once its in-flight work drains
    — a dispatch thread mid-submit on the old pool either finishes
    normally or observes a clean "cannot schedule new futures after
    shutdown" and retries on the new generation.  A broken pool's
    outstanding futures are cancelled *before* the rebuild so no
    dispatch thread waits on a future the dead pool will never complete.
    """

    name = "process"

    #: Transparent retries per query: once for a broken pool (rebuild),
    #: plus once more if the pool is swapped beneath a submit.
    MAX_RETRIES = 2

    def __init__(self, catalog: Catalog, workers: Optional[int] = None,
                 mp_context: Optional[str] = None,
                 streaming: bool = True, chunk_rows: int = 2048) -> None:
        if chunk_rows < 1:
            raise ValueError("chunk_rows must be >= 1")
        self.catalog = catalog
        self.workers = workers or os.cpu_count() or 1
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else None
        self._mp_context = mp_context
        self.streaming = streaming
        self.chunk_rows = chunk_rows
        self._lock = threading.Lock()
        self._handle: Optional[_PoolHandle] = None
        self._forked_once = False
        # Telemetry (under self._lock).
        self._rebuilds = 0
        self._streamed_chunks = 0
        self._streamed_queries = 0
        self._cache_hits = 0
        self._cache_misses = 0
        self._ensure_pool()

    # -- pool lifecycle ---------------------------------------------------------------
    def _build_context(self):
        """The start method for the next pool build: the configured one
        for the constructor-time build, never ``fork`` afterwards (a
        mid-traffic fork inherits whatever locks other threads hold)."""
        method = self._mp_context
        if method == "fork" and self._forked_once:
            method = "spawn"
        return multiprocessing.get_context(method) if method else None

    def _build_handle(self) -> _PoolHandle:
        """Build and warm a complete pool generation (no locks held —
        spawning workers is slow and must not block dispatch threads
        running on the current generation)."""
        payload = catalog_payload(self.catalog)
        context = self._build_context()
        queue = (context or multiprocessing).Queue()
        pool = ProcessPoolExecutor(
            max_workers=self.workers, mp_context=context,
            initializer=init_worker, initargs=(payload, queue))
        try:
            # Touch every worker now, not at first traffic.
            list(pool.map(_noop, range(self.workers)))
        except BaseException:
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        router = _StreamRouter(queue)
        if self._mp_context == "fork":
            self._forked_once = True
        return _PoolHandle(pool, queue, router, payload.version_token)

    def _ensure_pool(self) -> _PoolHandle:
        with self._lock:
            if self._handle is not None:
                return self._handle
        return self._rebuild(replacing=None)

    def _rebuild(self, replacing: Optional[_PoolHandle]) -> _PoolHandle:
        """Install a fresh pool generation, replacing *replacing*.

        The expectation guard makes concurrent rebuild attempts idempotent:
        if another thread already swapped the handle (e.g. two dispatch
        threads both observed the same broken pool), the later builder
        discards its own pool and adopts the winner's.
        """
        fresh = self._build_handle()
        with self._lock:
            current = self._handle
            if current is not None and current is not replacing:
                # Lost the race: someone already installed a new
                # generation.  Retire ours without ever exposing it.
                stale, winner = fresh, current
            else:
                self._handle = fresh
                if replacing is not None:
                    self._rebuilds += 1
                stale, winner = replacing, fresh
        if stale is not None:
            _retire_handle_async(stale)
        return winner

    def stale(self) -> bool:
        """Whether the catalog changed since the workers were built."""
        with self._lock:
            handle = self._handle
        return (handle is not None
                and handle.version != self.catalog.stats_version)

    def refresh(self) -> None:
        """Rebuild the pool against the current catalog contents.

        Safe under traffic: the new generation is built and warmed
        first, then swapped in; dispatch threads mid-flight on the old
        generation drain there (the old pool retires in the background),
        and a submit that races the swap retries on the new pool.
        """
        with self._lock:
            current = self._handle
        self._rebuild(replacing=current)

    def close(self) -> None:
        with self._lock:
            handle, self._handle = self._handle, None
        if handle is not None:
            handle.pool.shutdown(wait=True, cancel_futures=True)
            handle.router.stop()

    # -- execution -------------------------------------------------------------------
    def run_plan(self, plan, catalog: Catalog, parallelism: int = 1,
                 batch_size: Optional[int] = None,
                 check_orders: bool = False,
                 ctx: Optional[ExecutionContext] = None) -> list[tuple]:
        # Tracing rides the ambient span (the server's execute span):
        # run_plan's signature stays trace-free for third-party
        # backends, and untraced queries pay one ContextVar read.
        parent = active_span()
        meter_timing = ctx is not None and ctx.meter_timing
        occurrences, tasks = shard_subplans(plan)
        attempts = 0
        while True:
            handle = self._ensure_pool()
            try:
                if self.streaming and occurrences:
                    rows, local = self._run_streaming(
                        handle, plan, occurrences, tasks, catalog,
                        batch_size, check_orders, parent, meter_timing,
                        attempts)
                else:
                    rows, local = self._run_gathered(
                        handle, occurrences, tasks, plan, catalog,
                        batch_size, check_orders, parent, meter_timing,
                        attempts)
                break
            except BrokenExecutor:
                # A worker died (OOM, signal).  This attempt's futures
                # were already cancelled by the failing path; rebuild
                # once (spawn context — see _build_context) and retry,
                # so a transient casualty doesn't poison later queries.
                attempts += 1
                if attempts > self.MAX_RETRIES:
                    raise
                self._rebuild(replacing=handle)
            except RuntimeError as exc:
                # "cannot schedule new futures after shutdown": the pool
                # was swapped beneath us by a concurrent refresh.  The
                # new generation is already installed — just retry.
                if "shutdown" not in str(exc).lower():
                    raise
                attempts += 1
                if attempts > self.MAX_RETRIES:
                    raise
        if parent is not None and attempts:
            parent.tag(retries=attempts)
        if ctx is not None:
            ctx.absorb_tallies(local.tallies())
        return rows

    @staticmethod
    def _dispatch_span(parent, shard: int, attempt: int):
        """Open one shard's dispatch span (finished when its result —
        or failure — lands); returns ``(span, trace_ctx)`` or
        ``(None, None)`` untraced."""
        if parent is None:
            return None, None
        span = parent.trace.begin("shard_dispatch",
                                  parent_id=parent.span_id,
                                  shard=shard, attempt=attempt)
        return span, (parent.trace.trace_id, span.span_id)

    @staticmethod
    def _close_failed_spans(parent, spans, exc: BaseException) -> None:
        if parent is None:
            return
        for span in spans:
            if span is not None and span.end is None:
                span.tag(error=type(exc).__name__)
                parent.trace.finish(span)

    @staticmethod
    def _attach_worker_spans(parent, span, records) -> None:
        """Finish one shard's dispatch span and graft the worker's span
        records under it, rebased onto the dispatch span's start (worker
        clocks are not comparable with ours)."""
        if span is None:
            return
        parent.trace.finish(span)
        if records:
            parent.trace.attach(records, base_offset=span.start)

    def _run_gathered(self, handle: _PoolHandle, occurrences, tasks, plan,
                      catalog: Catalog, batch_size, check_orders,
                      parent=None, meter_timing: bool = False,
                      attempt: int = 0
                      ) -> tuple[list[tuple], ExecutionContext]:
        """Whole-result transfer: one future per task, each returning
        its full row list; the gather runs after every shard lands."""
        futures = []
        spans = []
        results = []
        try:
            # The submit loop sits inside the try: a broken pool can
            # raise at submit time, and any dispatch spans already
            # opened must still be closed.
            for i, task in enumerate(tasks):
                span, trace_ctx = self._dispatch_span(parent, i, attempt)
                spans.append(span)
                futures.append(handle.pool.submit(
                    execute_subplan, task, batch_size, check_orders,
                    meter_timing, trace_ctx))
            for future, span in zip(futures, spans):
                rows, tallies, records = future.result()
                results.append((rows, tallies))
                self._attach_worker_spans(parent, span, records)
        except BaseException as exc:
            # Cancel-before-rebuild: never leave the first attempt's
            # futures running (or queued) on a pool we may retire.
            for future in futures:
                future.cancel()
            self._close_failed_spans(parent, spans, exc)
            raise
        local = ExecutionContext(catalog, batch_size=batch_size,
                                 check_orders=check_orders,
                                 meter_timing=meter_timing)
        # Fold worker tallies in task (= shard) order: deterministic.
        for _, tallies in results:
            local.absorb_tallies(tallies)
        if not occurrences:
            return results[0][0], local
        shard_rows = []
        cursor = 0
        for node in occurrences:
            width = len(node.children)
            shard_rows.append([results[cursor + j][0] for j in range(width)])
            cursor += width
        root = assemble(plan, occurrences, shard_rows, catalog)
        with child_span("merge", shards=len(tasks)) as merge_span:
            rows = BatchedExecutor().run(root, local)
            merge_span.tag(rows=len(rows))
        return rows, local

    def _run_streaming(self, handle: _PoolHandle, plan, occurrences, tasks,
                       catalog: Catalog, batch_size, check_orders,
                       parent=None, meter_timing: bool = False,
                       attempt: int = 0
                       ) -> tuple[list[tuple], ExecutionContext]:
        """Chunked transfer: the merge consumes live shard streams.

        Stream ids are unique per attempt (the router hands them out),
        so chunks from a failed attempt still in the queue can never
        corrupt a retry's buffers — the router drops unknown ids.
        """
        streams: list[ShardStream] = []
        futures = []
        spans = []
        try:
            for i, task in enumerate(tasks):
                stream = handle.router.register()
                span, trace_ctx = self._dispatch_span(parent, i, attempt)
                spans.append(span)
                future = handle.pool.submit(
                    execute_subplan_stream, task, stream.stream_id,
                    batch_size, check_orders, self.chunk_rows,
                    meter_timing, trace_ctx)
                future.add_done_callback(_stream_failer(stream))
                streams.append(stream)
                futures.append(future)

            shard_streams = []
            cursor = 0
            for node in occurrences:
                width = len(node.children)
                shard_streams.append(streams[cursor:cursor + width])
                cursor += width
            root = assemble_streams(plan, occurrences, shard_streams, catalog)
            local = ExecutionContext(catalog, batch_size=batch_size,
                                     check_orders=check_orders,
                                     meter_timing=meter_timing)
            # In streaming the "merge" span overlaps worker execution by
            # design — it covers first-chunk to last-row of the gather.
            with child_span("merge", shards=len(tasks),
                            streaming=True) as merge_span:
                rows = BatchedExecutor().run(root, local)
                merge_span.tag(rows=len(rows))
        except BaseException as exc:
            for future in futures:
                future.cancel()
            for stream in streams:
                handle.router.unregister(stream.stream_id)
            self._close_failed_spans(parent, spans, exc)
            raise
        # The merge consumed every stream to its DONE sentinel, so the
        # worker tallies are in hand; fold them in task order, after the
        # merge's own charges — the sums are commutative, so totals are
        # identical to the gathered path's fold-then-merge order.
        for stream, span in zip(streams, spans):
            local.absorb_tallies(stream.tallies)
            self._attach_worker_spans(parent, span, stream.spans)
        with self._lock:
            self._streamed_queries += 1
            self._streamed_chunks += sum(s.chunks_received for s in streams)
            hits = sum(1 for s in streams if s.cache_hit)
            self._cache_hits += hits
            self._cache_misses += len(streams) - hits
        return rows, local

    def describe(self) -> dict:
        with self._lock:
            handle = self._handle
            out = {
                "backend": self.name,
                "pool_workers": self.workers,
                "streaming": self.streaming,
                "chunk_rows": self.chunk_rows,
                "pool_rebuilds": self._rebuilds,
                "streamed_queries": self._streamed_queries,
                "streamed_chunks": self._streamed_chunks,
                "subplan_cache_hits": self._cache_hits,
                "subplan_cache_misses": self._cache_misses,
            }
        out["pool_stale"] = (handle is not None
                             and handle.version != self.catalog.stats_version)
        return out


def _stream_failer(stream: ShardStream):
    """Done-callback failing *stream* when its producing task cannot
    deliver the DONE sentinel (error or cancellation); a no-op for tasks
    that finished cleanly (the sentinel already closed the stream)."""
    def callback(future) -> None:
        if future.cancelled():
            stream.fail(CancelledError("shard task cancelled"))
            return
        exc = future.exception()
        if exc is not None:
            stream.fail(exc)
    return callback


def _retire_handle_async(handle: _PoolHandle) -> None:
    """Retire an old pool generation without blocking the swapper.

    In-flight futures on the old pool are allowed to drain (dispatch
    threads may still be waiting on them); the router stops only after
    ``shutdown(wait=True)`` returns, i.e. after every worker exited — so
    streaming queries on the old generation route to completion first.
    A broken pool's futures were cancelled by the failing ``run_plan``
    before the rebuild, so retirement is prompt there too.
    """
    def retire() -> None:
        handle.pool.shutdown(wait=True, cancel_futures=False)
        handle.router.stop()

    threading.Thread(target=retire, daemon=True,
                     name="pool-retirement").start()


def _noop(_: int) -> None:
    """Pool warm-up task (must be module-level for pickling)."""


def make_backend(kind, catalog: Catalog,
                 pool_workers: Optional[int] = None,
                 mp_context: Optional[str] = None,
                 streaming: bool = True,
                 chunk_rows: int = 2048) -> ExecutionBackend:
    """Resolve a backend spec: an instance passes through, a name
    (``"serial"`` / ``"threads"`` / ``"process"``) is constructed."""
    if isinstance(kind, ExecutionBackend):
        return kind
    if kind == "serial":
        return SerialBackend()
    if kind == "threads":
        return ThreadBackend()
    if kind == "process":
        return ProcessPoolBackend(catalog, workers=pool_workers,
                                  mp_context=mp_context,
                                  streaming=streaming, chunk_rows=chunk_rows)
    raise ValueError(f"unknown backend {kind!r}; "
                     "have 'serial', 'threads', 'process'")
