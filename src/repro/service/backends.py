"""Pluggable execution backends for the :class:`QueryServer`.

A backend turns one bound :class:`~repro.optimizer.plans.PhysicalPlan`
into result rows.  Three strategies:

* :class:`SerialBackend` — the in-process
  :class:`~repro.engine.executor.BatchedExecutor`, one plan per dispatch
  thread.  Concurrency across queries comes from the server's dispatch
  pool, but CPython's GIL serializes the CPU work.
* :class:`ThreadBackend` — same, with thread-pool exchange drains
  (``use_threads=True``).  Helps I/O-bound operator backends; pure-Python
  CPU work still serializes.
* :class:`ProcessPoolBackend` — ships per-shard subplans (or whole
  plans, when a plan has no exchange) to worker processes and gathers
  them through the order-preserving merge in the serving process
  (:mod:`repro.engine.subplan`).  This is the one backend that gives the
  sharded enforcers true multi-core parallelism beyond the GIL.

Every backend returns rows **bit-identical** to serial execution: shard
pipelines are cut only at exchange boundaries, workers run the exact
per-shard plans, and the serving-side gather performs the same stable
merge (ties to the lowest shard index) the local exchange would.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import Optional

from ..engine.context import ExecutionContext
from ..engine.executor import BatchedExecutor
from ..engine.subplan import (
    assemble,
    execute_subplan,
    init_worker,
    shard_subplans,
)
from ..storage.catalog import Catalog
from ..storage.handoff import catalog_payload


class ExecutionBackend:
    """Interface: run one bound physical plan to completion.

    *ctx*, when supplied, receives the execution's counter tallies
    (simulated I/O, comparisons, sort metrics) — for the process
    backend these are the worker tallies folded in shard order, so
    totals match in-process execution's determinism.
    """

    name = "backend"

    def run_plan(self, plan, catalog: Catalog, parallelism: int = 1,
                 batch_size: Optional[int] = None,
                 check_orders: bool = False,
                 ctx: Optional[ExecutionContext] = None) -> list[tuple]:
        raise NotImplementedError

    def close(self) -> None:
        """Release pools/processes; idempotent."""

    def describe(self) -> dict:
        """Static configuration for ``QueryServer.stats()``."""
        return {"backend": self.name}


class SerialBackend(ExecutionBackend):
    """In-process batched execution (the ``QuerySession.execute`` path)."""

    name = "serial"

    def __init__(self, use_threads: bool = False) -> None:
        self.use_threads = use_threads

    def run_plan(self, plan, catalog: Catalog, parallelism: int = 1,
                 batch_size: Optional[int] = None,
                 check_orders: bool = False,
                 ctx: Optional[ExecutionContext] = None) -> list[tuple]:
        ctx = ctx or ExecutionContext(catalog, batch_size=batch_size,
                                      check_orders=check_orders)
        executor = BatchedExecutor(parallelism=parallelism,
                                   use_threads=self.use_threads)
        return executor.run(plan.to_operator(catalog), ctx)


class ThreadBackend(SerialBackend):
    """Serial backend with thread-pool exchange drains."""

    name = "threads"

    def __init__(self) -> None:
        super().__init__(use_threads=True)


class ProcessPoolBackend(ExecutionBackend):
    """Multi-core execution over a pool of worker processes.

    The pool is built once (eagerly, so all workers exist before the
    server's dispatch threads start) with each worker holding its own
    catalog copy from a :func:`~repro.storage.handoff.catalog_payload`
    snapshot.  Per query, the plan's maximal exchanges are cut into
    per-shard tasks (:func:`~repro.engine.subplan.shard_subplans`);
    plans without exchanges ship whole — the pool then provides
    inter-query parallelism instead.

    ``mp_context`` picks the multiprocessing start method; the default
    prefers ``fork`` (cheap worker startup, payload inherited by
    reference) and falls back to the platform default where ``fork`` is
    unavailable.  ``fork`` is only safe while the serving process is
    single-threaded, so it is used exclusively for the **eager initial
    build** (which the constructor performs, before the server's
    dispatch threads exist); any later rebuild — :meth:`refresh` after
    catalog row changes, or the automatic replacement of a broken pool
    — happens mid-traffic and therefore switches to ``spawn``, which
    never inherits another thread's held locks.  :meth:`stale` reports
    whether the catalog version moved since the pool was built.
    """

    name = "process"

    def __init__(self, catalog: Catalog, workers: Optional[int] = None,
                 mp_context: Optional[str] = None) -> None:
        self.catalog = catalog
        self.workers = workers or os.cpu_count() or 1
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else None
        self._mp_context = mp_context
        self._lock = threading.Lock()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_version: Optional[int] = None
        self._forked_once = False
        self._ensure_pool()

    # -- pool lifecycle ---------------------------------------------------------------
    def _build_context(self):
        """The start method for the next pool build: the configured one
        for the constructor-time build, never ``fork`` afterwards (a
        mid-traffic fork inherits whatever locks other threads hold)."""
        method = self._mp_context
        if method == "fork" and self._forked_once:
            method = "spawn"
        return multiprocessing.get_context(method) if method else None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._pool is None:
                payload = catalog_payload(self.catalog)
                context = self._build_context()
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=context,
                    initializer=init_worker, initargs=(payload,))
                # Touch every worker now, not at first traffic.
                list(self._pool.map(_noop, range(self.workers)))
                self._pool_version = payload.version_token
                if self._mp_context == "fork":
                    self._forked_once = True
            return self._pool

    def stale(self) -> bool:
        """Whether the catalog changed since the workers were built."""
        return (self._pool_version is not None
                and self._pool_version != self.catalog.stats_version)

    def refresh(self) -> None:
        """Rebuild the pool against the current catalog contents."""
        self.close()
        self._ensure_pool()

    def close(self) -> None:
        with self._lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True, cancel_futures=True)
                self._pool = None

    # -- execution -------------------------------------------------------------------
    def run_plan(self, plan, catalog: Catalog, parallelism: int = 1,
                 batch_size: Optional[int] = None,
                 check_orders: bool = False,
                 ctx: Optional[ExecutionContext] = None) -> list[tuple]:
        pool = self._ensure_pool()
        occurrences, tasks = shard_subplans(plan)
        try:
            futures = [pool.submit(execute_subplan, task, batch_size,
                                   check_orders)
                       for task in tasks]
            results = [future.result() for future in futures]
        except BrokenExecutor:
            # A worker died (OOM, signal): rebuild once (spawn context —
            # see _build_context) and retry, so a transient casualty
            # doesn't poison every later query.
            self.refresh()
            pool = self._ensure_pool()
            futures = [pool.submit(execute_subplan, task, batch_size,
                                   check_orders)
                       for task in tasks]
            results = [future.result() for future in futures]
        ctx = ctx or ExecutionContext(catalog, batch_size=batch_size,
                                      check_orders=check_orders)
        # Fold worker tallies in task (= shard) order: deterministic.
        for _, tallies in results:
            ctx.absorb_tallies(tallies)
        if not occurrences:
            return results[0][0]
        shard_rows = []
        cursor = 0
        for node in occurrences:
            width = len(node.children)
            shard_rows.append([results[cursor + j][0] for j in range(width)])
            cursor += width
        root = assemble(plan, occurrences, shard_rows, catalog)
        return BatchedExecutor().run(root, ctx)

    def describe(self) -> dict:
        return {"backend": self.name, "pool_workers": self.workers,
                "pool_stale": self.stale()}


def _noop(_: int) -> None:
    """Pool warm-up task (must be module-level for pickling)."""


def make_backend(kind, catalog: Catalog,
                 pool_workers: Optional[int] = None,
                 mp_context: Optional[str] = None) -> ExecutionBackend:
    """Resolve a backend spec: an instance passes through, a name
    (``"serial"`` / ``"threads"`` / ``"process"``) is constructed."""
    if isinstance(kind, ExecutionBackend):
        return kind
    if kind == "serial":
        return SerialBackend()
    if kind == "threads":
        return ThreadBackend()
    if kind == "process":
        return ProcessPoolBackend(catalog, workers=pool_workers,
                                  mp_context=mp_context)
    raise ValueError(f"unknown backend {kind!r}; "
                     "have 'serial', 'threads', 'process'")
