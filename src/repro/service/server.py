"""The concurrent query server: admission control, shared plan cache,
pluggable execution backends.

:class:`QueryServer` is the process-level serving tier on top of the
:class:`~repro.service.session.QuerySession` facade.  Many concurrent
clients — asyncio tasks via :meth:`QueryServer.submit`, plain threads
via :meth:`QueryServer.execute` — funnel into one admission-controlled
dispatch pool:

1. **Admission** — a submission is rejected immediately
   (:class:`QueryRejected`) when the wait queue already holds
   ``queue_limit`` admitted-but-not-running queries; otherwise it queues
   for one of ``max_inflight`` dispatch slots.
2. **Planning** — each dispatch thread owns a private
   :class:`QuerySession` (sessions are single-threaded by design), but
   every session shares one
   :class:`~repro.service.plan_cache.SharedPlanCache`: a plan optimized
   for any client serves all of them, still keyed by
   fingerprint × parallelism × referenced-table versions.
3. **Execution** — the bound plan runs on the configured backend
   (:mod:`repro.service.backends`): in-process serial/threaded, or the
   **process pool**, which ships per-shard subplans to worker processes
   and re-gathers them through the order-preserving merge — multi-core
   parallelism the GIL denies the in-process backends.
4. **Deadlines** — ``timeout`` (per call or ``default_timeout``) covers
   queue wait + execution; an expired query raises
   :class:`QueryTimeout` and is counted.  A query whose slot never
   started is cancelled outright; one already running completes in the
   background (its slot is not reclaimable mid-plan) but its result is
   discarded.

Observability: :meth:`QueryServer.stats` flattens the admission
counters, latency quantiles (p50/p95), worker utilization, shared-cache
counters and the aggregated per-session optimizer counters into one
JSON-friendly dict — see :mod:`repro.service.metrics`.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, fields
from functools import partial
from typing import Any, Optional

from ..core.sort_order import SortOrder
from ..engine.kernels import kernel_stats
from ..storage.catalog import Catalog
from .backends import ExecutionBackend, make_backend
from .metrics import ServerMetrics
from .plan_cache import SharedPlanCache
from .session import QuerySession, SessionMetrics

__all__ = ["QueryRejected", "QueryResult", "QueryServer", "QueryTimeout"]


class QueryRejected(RuntimeError):
    """Admission control turned the query away (wait queue full)."""


class QueryTimeout(TimeoutError):
    """The query missed its deadline (queue wait + execution)."""


@dataclass
class QueryResult:
    """One served query: rows plus serving metadata."""

    rows: list[tuple]
    from_cache: bool
    latency_seconds: float
    backend: str


class QueryServer:
    """Admission-controlled concurrent query serving over one catalog.

    Thread-safe and loop-agnostic: :meth:`submit` may be awaited from
    any running event loop and :meth:`execute` called from any thread —
    both funnel into the same dispatch pool, admission counters and
    shared plan cache.
    """

    def __init__(self, catalog: Catalog, *,
                 backend: Any = "serial",
                 parallelism: int = 1,
                 batch_size: Optional[int] = None,
                 max_inflight: int = 4,
                 queue_limit: int = 32,
                 default_timeout: Optional[float] = None,
                 cache_capacity: int = 256,
                 cache_ttl: Optional[float] = None,
                 strategy: str = "pyro-o",
                 config: Any = None,
                 pool_workers: Optional[int] = None,
                 mp_context: Optional[str] = None,
                 **overrides: Any) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        self.catalog = catalog
        self.parallelism = parallelism
        self.batch_size = batch_size
        self.max_inflight = max_inflight
        self.queue_limit = queue_limit
        self.default_timeout = default_timeout
        self.backend: ExecutionBackend = make_backend(
            backend, catalog, pool_workers=pool_workers,
            mp_context=mp_context)
        self.cache: SharedPlanCache = SharedPlanCache(
            cache_capacity, ttl_seconds=cache_ttl)
        self.metrics = ServerMetrics()
        self._strategy = strategy
        self._config = config
        self._overrides = overrides
        self._dispatch = ThreadPoolExecutor(
            max_workers=max_inflight, thread_name_prefix="repro-serve")
        self._local = threading.local()
        self._sessions: list[QuerySession] = []
        self._sessions_lock = threading.Lock()
        self._closed = False

    # -- lifecycle --------------------------------------------------------------------
    def close(self) -> None:
        """Drain the dispatch pool and release the backend; idempotent."""
        if self._closed:
            return
        self._closed = True
        self._dispatch.shutdown(wait=True, cancel_futures=True)
        self.backend.close()

    def __enter__(self) -> "QueryServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- sessions ---------------------------------------------------------------------
    def _session(self) -> QuerySession:
        """This dispatch thread's session (created on first use); all
        sessions share :attr:`cache`."""
        session = getattr(self._local, "session", None)
        if session is None:
            session = QuerySession(self.catalog, self._strategy, self._config,
                                   cache=self.cache, **self._overrides)
            self._local.session = session
            with self._sessions_lock:
                self._sessions.append(session)
        return session

    # -- the dispatch-thread body -------------------------------------------------------
    def _run_admitted(self, query, required_order: Optional[SortOrder],
                      parallelism: int, batch_size: Optional[int],
                      binds: dict[str, Any],
                      deadline: Optional[float]) -> QueryResult:
        self.metrics.start_execution()
        started = time.perf_counter()
        ok = False
        try:
            if deadline is not None and time.monotonic() >= deadline:
                raise QueryTimeout("deadline expired while queued")
            session = self._session()
            prepared = session.prepare(query, required_order,
                                       parallelism=parallelism)
            plan = prepared.bind(**binds)
            rows = self.backend.run_plan(plan, self.catalog,
                                         parallelism=parallelism,
                                         batch_size=batch_size)
            # The dispatch path executes through the backend, not
            # PreparedQuery.execute — keep the session's execution
            # counter truthful for aggregated stats().
            session.metrics.executions += 1
            ok = True
            return QueryResult(rows, prepared.from_cache,
                               time.perf_counter() - started,
                               self.backend.name)
        finally:
            self.metrics.finish_execution(time.perf_counter() - started, ok)

    def _dispatch_query(self, query, required_order, parallelism, batch_size,
                        binds, timeout):
        """Admission + submission; returns (cfuture, timeout)."""
        if self._closed:
            raise RuntimeError("QueryServer is closed")
        timeout = self.default_timeout if timeout is None else timeout
        parallelism = self.parallelism if parallelism is None else parallelism
        batch_size = self.batch_size if batch_size is None else batch_size
        if not self.metrics.try_admit(self.queue_limit):
            raise QueryRejected(
                f"admission queue full ({self.queue_limit} waiting)")
        deadline = None if timeout is None else time.monotonic() + timeout
        future = self._dispatch.submit(
            partial(self._run_admitted, query, required_order, parallelism,
                    batch_size, binds, deadline))
        # A submission cancelled before its slot started never reaches
        # _run_admitted; reclaim its queue slot here.
        future.add_done_callback(
            lambda f: self.metrics.unqueue() if f.cancelled() else None)
        return future, timeout

    # -- client APIs ------------------------------------------------------------------
    async def submit(self, query, required_order: Optional[SortOrder] = None,
                     *, parallelism: Optional[int] = None,
                     batch_size: Optional[int] = None,
                     timeout: Optional[float] = None,
                     **binds: Any) -> QueryResult:
        """Serve one query from an asyncio client.

        Raises :class:`QueryRejected` immediately when the wait queue is
        full, :class:`QueryTimeout` when the deadline passes first.
        """
        future, timeout = self._dispatch_query(
            query, required_order, parallelism, batch_size, binds, timeout)
        wrapped = asyncio.wrap_future(future)
        try:
            if timeout is None:
                return await wrapped
            return await asyncio.wait_for(wrapped, timeout)
        except (TimeoutError, QueryTimeout) as exc:
            self.metrics.count_timeout()
            raise QueryTimeout(str(exc) or "query deadline expired") from None

    def execute(self, query, required_order: Optional[SortOrder] = None,
                *, parallelism: Optional[int] = None,
                batch_size: Optional[int] = None,
                timeout: Optional[float] = None, **binds: Any) -> QueryResult:
        """Serve one query from a plain (non-async) thread client."""
        future, timeout = self._dispatch_query(
            query, required_order, parallelism, batch_size, binds, timeout)
        try:
            return future.result(timeout)
        except (TimeoutError, QueryTimeout) as exc:
            future.cancel()
            self.metrics.count_timeout()
            raise QueryTimeout(str(exc) or "query deadline expired") from None

    # -- observability -----------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Flat serving metrics: admission, latency, utilization, shared
        cache, aggregated session/optimizer counters, backend config."""
        out: dict[str, Any] = dict(self.metrics.as_dict(self.max_inflight))
        out.update(self.backend.describe())
        out["max_inflight_limit"] = self.max_inflight
        out["queue_limit"] = self.queue_limit
        out["parallelism"] = self.parallelism
        with self._sessions_lock:
            sessions = list(self._sessions)
        out["sessions"] = len(sessions)
        totals = SessionMetrics()
        for session in sessions:
            for f in fields(SessionMetrics):
                setattr(totals, f.name, getattr(totals, f.name)
                        + getattr(session.metrics, f.name))
        for f in fields(SessionMetrics):
            out[f.name] = getattr(totals, f.name)
        out["cache_size"] = len(self.cache)
        out["cache_capacity"] = self.cache.capacity
        out["cache_ttl_seconds"] = self.cache.ttl_seconds
        for name, value in self.cache.stats.as_dict().items():
            out[f"cache_{name}"] = value
        # Process-global kernel/columnar telemetry — taken once from the
        # shared caches, NOT summed per session (sessions all read the
        # same process-wide counters; summing would multiply them).
        out.update(kernel_stats())
        return out
