"""The concurrent query server: admission control, shared plan cache,
pluggable execution backends, cooperative backpressure.

:class:`QueryServer` is the process-level serving tier on top of the
:class:`~repro.service.session.QuerySession` facade.  Many concurrent
clients — asyncio tasks via :meth:`QueryServer.submit`, plain threads
via :meth:`QueryServer.execute` — funnel into one admission-controlled
dispatch pool:

1. **Admission** — a submission is rejected immediately
   (:class:`QueryRejected`) when the wait queue already holds
   ``queue_limit`` admitted-but-not-running queries, when the caller's
   tenant is over its weighted-fair share of the pool under contention
   (``rejected_quota``), or when the execution circuit breaker is open
   (:class:`CircuitOpen`).  Every rejection carries a computed
   ``retry_after`` hint — the estimated seconds until capacity frees —
   which :class:`~repro.service.client.RetryingClient` honours.
2. **Planning** — each dispatch thread owns a private
   :class:`QuerySession` (sessions are single-threaded by design), but
   every session shares one
   :class:`~repro.service.plan_cache.SharedPlanCache`: a plan optimized
   for any client serves all of them, still keyed by
   fingerprint × parallelism × referenced-table versions.
3. **Execution** — the bound plan runs on the configured backend
   (:mod:`repro.service.backends`): in-process serial/threaded, or the
   **process pool**, which ships per-shard subplans to worker processes
   and streams their results back batch-at-a-time through the
   order-preserving merge.  Backend failures feed the
   :class:`~repro.service.metrics.CircuitBreaker`; after
   ``circuit_threshold`` consecutive failures the breaker opens and
   sheds load until a half-open probe succeeds.
4. **Deadlines** — ``timeout`` (per call or ``default_timeout``) covers
   queue wait + execution; an expired query raises
   :class:`QueryTimeout` and is counted.  A query whose slot never
   started is cancelled outright; one already running completes in the
   background (its slot is not reclaimable mid-plan) but its result is
   discarded and counted ``abandoned`` — never double-counted as
   ``completed`` after the client's ``timeout``.

Admission outcomes are **mutually exclusive** (see
:class:`~repro.service.metrics.QueryOutcome`), so at quiescence::

    submitted == completed + failed + timeouts
               + rejected_queue_full + rejected_quota + rejected_circuit

Observability: :meth:`QueryServer.stats` flattens the admission
counters, per-tenant counters, circuit-breaker state, latency quantiles
(p50/p95), worker utilization, shared-cache counters and the aggregated
per-session optimizer counters into one JSON-friendly dict — see
:mod:`repro.service.metrics`.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass, field, fields
from functools import partial
from typing import Any, Mapping, Optional

from ..core.sort_order import SortOrder
from ..engine.context import ExecutionContext
from ..engine.kernels import kernel_stats
from ..obs import ObservabilityConfig
from ..obs.export import SlowQueryLog, json_snapshot, prometheus_text
from ..obs.trace import Trace, Tracer, child_span
from ..storage.catalog import Catalog
from .backends import ExecutionBackend, make_backend
from .metrics import (
    DEFAULT_TENANT,
    CircuitBreaker,
    QueryOutcome,
    ServerMetrics,
)
from .plan_cache import SharedPlanCache
from .session import QuerySession, SessionMetrics

__all__ = ["CircuitOpen", "QueryRejected", "QueryResult", "QueryServer",
           "QueryTimeout", "TracedResult"]


class QueryRejected(RuntimeError):
    """Admission control turned the query away.

    ``retry_after`` is the server's cooperative backpressure hint: the
    estimated seconds until capacity frees (queue drain time for a full
    queue, remaining open time for a tripped circuit).  ``reason`` is
    ``"queue_full"`` or ``"quota"`` (subclasses set their own).
    """

    def __init__(self, message: str, *, retry_after: float = 0.0,
                 reason: str = "queue_full") -> None:
        super().__init__(message)
        self.retry_after = retry_after
        self.reason = reason


class CircuitOpen(QueryRejected):
    """The execution circuit breaker is open — the backend is presumed
    down and the server sheds load instead of queueing onto it.  A
    subclass of :class:`QueryRejected` so clients treating rejections as
    retryable need no special case."""

    def __init__(self, message: str, *, retry_after: float = 0.0) -> None:
        super().__init__(message, retry_after=retry_after, reason="circuit_open")


class QueryTimeout(TimeoutError):
    """The query missed its deadline (queue wait + execution)."""


@dataclass
class QueryResult:
    """One served query: rows plus serving metadata."""

    rows: list[tuple]
    from_cache: bool
    latency_seconds: float
    backend: str


@dataclass
class TracedResult(QueryResult):
    """A :class:`QueryResult` served with tracing on: carries the span
    tree and the per-operator meter snapshots, so callers can render an
    EXPLAIN ANALYZE without a second execution."""

    trace: Optional[Trace] = None
    plan: Any = None
    operator_rows: dict = field(default_factory=dict)
    operator_times: dict = field(default_factory=dict)

    def explain_analyze(self) -> Any:
        """The annotated plan tree (:class:`~repro.obs.analyze.ExplainAnalyze`)
        for this execution."""
        from ..obs.analyze import ExplainAnalyze
        return ExplainAnalyze(self.plan, self.operator_rows,
                              self.operator_times, self.latency_seconds,
                              len(self.rows))


class QueryServer:
    """Admission-controlled concurrent query serving over one catalog.

    Thread-safe and loop-agnostic: :meth:`submit` may be awaited from
    any running event loop and :meth:`execute` called from any thread —
    both funnel into the same dispatch pool, admission counters and
    shared plan cache.

    ``tenant_weights`` maps tenant name → weight for the weighted-fair
    admission quota (unknown tenants weigh ``default_tenant_weight``);
    ``circuit_threshold`` / ``circuit_reset_timeout`` configure the
    execution circuit breaker (consecutive backend failures to open,
    seconds until the half-open probe).
    """

    def __init__(self, catalog: Catalog, *,
                 backend: Any = "serial",
                 parallelism: int = 1,
                 batch_size: Optional[int] = None,
                 max_inflight: int = 4,
                 queue_limit: int = 32,
                 default_timeout: Optional[float] = None,
                 cache_capacity: int = 256,
                 cache_ttl: Optional[float] = None,
                 strategy: str = "pyro-o",
                 config: Any = None,
                 pool_workers: Optional[int] = None,
                 mp_context: Optional[str] = None,
                 tenant_weights: Optional[Mapping[str, float]] = None,
                 default_tenant_weight: float = 1.0,
                 circuit_threshold: int = 5,
                 circuit_reset_timeout: float = 1.0,
                 feedback: Any = None,
                 obs: Any = None,
                 **overrides: Any) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        if default_tenant_weight <= 0:
            raise ValueError("default_tenant_weight must be positive")
        if tenant_weights and any(w <= 0 for w in tenant_weights.values()):
            raise ValueError("tenant weights must be positive")
        self.catalog = catalog
        self.parallelism = parallelism
        self.batch_size = batch_size
        self.max_inflight = max_inflight
        self.queue_limit = queue_limit
        self.default_timeout = default_timeout
        self.tenant_weights = dict(tenant_weights or {})
        self.default_tenant_weight = default_tenant_weight
        self.backend: ExecutionBackend = make_backend(
            backend, catalog, pool_workers=pool_workers,
            mp_context=mp_context)
        self.cache: SharedPlanCache = SharedPlanCache(
            cache_capacity, ttl_seconds=cache_ttl)
        self.metrics = ServerMetrics()
        self.breaker = CircuitBreaker(
            failure_threshold=circuit_threshold,
            reset_timeout=circuit_reset_timeout)
        self._strategy = strategy
        self._config = config
        #: Adaptive-statistics feedback (a
        #: :class:`~repro.service.feedback.FeedbackConfig`, or ``None``
        #: to disable): every dispatch session shares it, so drift seen
        #: by any session invalidates the shared cache's stale plans.
        self.feedback = feedback
        #: Observability: ``obs=True`` enables the defaults, an
        #: :class:`~repro.obs.ObservabilityConfig` customizes them,
        #: ``None``/``False`` (the default) runs the exact pre-tracing
        #: code paths — no spans, no meter timing, no slow log.
        if obs is True:
            obs = ObservabilityConfig()
        self.obs: Optional[ObservabilityConfig] = obs or None
        if self.obs is not None:
            self.tracer: Optional[Tracer] = self.obs.tracer or Tracer()
            self.slow_log: Optional[SlowQueryLog] = SlowQueryLog(
                capacity=self.obs.slow_log_capacity,
                threshold_seconds=self.obs.slow_query_seconds)
        else:
            self.tracer = None
            self.slow_log = None
        self._overrides = overrides
        self._dispatch = ThreadPoolExecutor(
            max_workers=max_inflight, thread_name_prefix="repro-serve")
        self._local = threading.local()
        self._sessions: list[QuerySession] = []
        self._sessions_lock = threading.Lock()
        self._closed = False

    # -- lifecycle --------------------------------------------------------------------
    def close(self) -> None:
        """Drain the dispatch pool and release the backend; idempotent."""
        if self._closed:
            return
        self._closed = True
        self._dispatch.shutdown(wait=True, cancel_futures=True)
        self.backend.close()

    def __enter__(self) -> "QueryServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- sessions ---------------------------------------------------------------------
    def _session(self) -> QuerySession:
        """This dispatch thread's session (created on first use); all
        sessions share :attr:`cache`."""
        session = getattr(self._local, "session", None)
        if session is None:
            session = QuerySession(self.catalog, self._strategy, self._config,
                                   cache=self.cache, feedback=self.feedback,
                                   **self._overrides)
            self._local.session = session
            with self._sessions_lock:
                self._sessions.append(session)
        return session

    # -- admission helpers -------------------------------------------------------------
    def _weight_of(self, tenant: str) -> float:
        return self.tenant_weights.get(tenant, self.default_tenant_weight)

    def _retry_after(self) -> float:
        return self.metrics.retry_after(self.max_inflight)

    # -- the dispatch-thread body -------------------------------------------------------
    def _run_admitted(self, outcome: QueryOutcome, query,
                      required_order: Optional[SortOrder],
                      parallelism: int, batch_size: Optional[int],
                      binds: dict[str, Any],
                      deadline: Optional[float],
                      trace: Optional[Trace] = None,
                      root=None, queue_span=None) -> QueryResult:
        self.metrics.start_execution(outcome)
        if trace is not None and queue_span is not None:
            # Begun on the client thread at admission; this dispatch
            # thread picking the query up ends the wait.
            trace.finish(queue_span)
        started = time.perf_counter()
        disposition = "failed"
        breaker_recorded = False
        try:
            # activate(): re-establish the ambient span on *this* thread
            # so child_span calls in session/optimizer/backend code all
            # parent under the query's root span.
            with (trace.activate(root) if trace is not None
                  else nullcontext()):
                if deadline is not None and time.monotonic() >= deadline:
                    # Expired while queued: this is a timeout, not a backend
                    # failure — resolved here exactly once (the client's own
                    # wait path will find the outcome already claimed).
                    disposition = "timeout"
                    raise QueryTimeout("deadline expired while queued")
                session = self._session()
                prepared = session.prepare(query, required_order,
                                           parallelism=parallelism)
                with child_span("bind", params=len(binds)):
                    plan = prepared.bind(**binds)
                # With feedback or tracing on, collect the execution's
                # tallies (the process backend folds worker tallies into
                # the given ctx): feedback checks estimated-vs-actual
                # drift, tracing feeds EXPLAIN ANALYZE.  The ctx kwarg is
                # only passed when needed — pre-ctx third-party backends
                # keep working as long as both stay off.
                ctx = None
                run_kwargs: dict[str, Any] = {}
                if self.feedback is not None or trace is not None:
                    ctx = ExecutionContext(
                        self.catalog, batch_size=batch_size,
                        meter_timing=(trace is not None
                                      and self.obs.meter_timing))
                    run_kwargs["ctx"] = ctx
                try:
                    with child_span("execute",
                                    backend=self.backend.name) as espan:
                        rows = self.backend.run_plan(plan, self.catalog,
                                                     parallelism=parallelism,
                                                     batch_size=batch_size,
                                                     **run_kwargs)
                        espan.tag(rows=len(rows))
                except Exception:
                    # Only backend execution trips the breaker — plan and
                    # bind errors above say nothing about backend health.
                    self.breaker.record_failure()
                    breaker_recorded = True
                    raise
                self.breaker.record_success()
                breaker_recorded = True
                # The dispatch path executes through the backend, not
                # PreparedQuery.execute — keep the session's execution
                # counter truthful for aggregated stats().
                session.metrics.executions += 1
                if ctx is not None:
                    session.observe_execution(prepared, ctx)
                disposition = "completed"
                elapsed = time.perf_counter() - started
                if self.slow_log is not None:
                    self.slow_log.observe(
                        fingerprint=prepared.fingerprint,
                        tenant=outcome.tenant,
                        latency_seconds=elapsed,
                        backend=self.backend.name, trace=trace)
                if trace is None:
                    return QueryResult(rows, prepared.from_cache, elapsed,
                                       self.backend.name)
                root.tag(disposition="completed",
                         cache_hit=prepared.from_cache)
                trace.finish(root)
                return TracedResult(
                    rows, prepared.from_cache, elapsed, self.backend.name,
                    trace=trace, plan=prepared.plan,
                    operator_rows={t: (c[0], c[1]) for t, c
                                   in ctx.operator_rows.items()},
                    operator_times={t: (c[0], c[1]) for t, c
                                    in ctx.operator_times.items()})
        finally:
            if trace is not None and root.end is None:
                # Failure/timeout paths: close the root with the
                # disposition so partial traces still render.
                root.tag(disposition=disposition)
                trace.finish(root)
            if not breaker_recorded:
                # The backend never saw this query (queued-deadline
                # expiry, plan/bind error): release any half-open probe
                # slot its admission reserved.
                self.breaker.abort_probe()
            self.metrics.finish_execution(time.perf_counter() - started,
                                          disposition, outcome)

    @staticmethod
    def _finish_rejected(trace, root, adm, reason: str) -> None:
        """Close a rejected submission's spans (the trace is discarded —
        the caller raises — but never left dangling open)."""
        if trace is None:
            return
        trace.finish(adm)
        root.tag(disposition=reason)
        trace.finish(root)

    def _dispatch_query(self, query, required_order, parallelism, batch_size,
                        binds, timeout, tenant, trace=None):
        """Admission + submission; returns (cfuture, timeout, outcome)."""
        if self._closed:
            raise RuntimeError("QueryServer is closed")
        tenant = tenant or DEFAULT_TENANT
        timeout = self.default_timeout if timeout is None else timeout
        parallelism = self.parallelism if parallelism is None else parallelism
        batch_size = self.batch_size if batch_size is None else batch_size
        # Per-call ``trace=`` overrides the config default; either way a
        # trace only exists when the server was built with ``obs=``.
        want_trace = (self.obs is not None and self.obs.trace_queries) \
            if trace is None else bool(trace)
        tr = self.tracer.start("query") \
            if want_trace and self.tracer is not None else None
        root = adm = None
        if tr is not None:
            root = tr.begin("query", tenant=tenant,
                            backend=self.backend.name,
                            parallelism=parallelism)
            adm = tr.begin("admission", parent_id=root.span_id)
        circuit_retry = self.breaker.check()
        if circuit_retry is not None:
            self.metrics.count_rejected_circuit(tenant)
            self._finish_rejected(tr, root, adm, "rejected_circuit")
            raise CircuitOpen(
                f"execution circuit open (backend failing); retry in "
                f"{circuit_retry:.2f}s", retry_after=circuit_retry)
        verdict, outcome = self.metrics.try_admit(
            self.queue_limit, tenant=tenant,
            capacity=self.max_inflight + self.queue_limit,
            weight_of=self._weight_of)
        if verdict != "admitted":
            # Release the half-open probe slot check() may have reserved
            # — this submission never reaches the backend.
            self.breaker.abort_probe()
            self._finish_rejected(tr, root, adm, f"rejected_{verdict}")
            if verdict == "queue_full":
                raise QueryRejected(
                    f"admission queue full ({self.queue_limit} waiting)",
                    retry_after=self._retry_after(), reason="queue_full")
            raise QueryRejected(
                f"tenant {tenant!r} over its fair-share admission quota",
                retry_after=self._retry_after(), reason="quota")
        queue_span = None
        if tr is not None:
            tr.finish(adm)
            # Begun here on the client thread, finished by the dispatch
            # thread that picks the query up — the gap IS the queue wait.
            queue_span = tr.begin("queue_wait", parent_id=root.span_id)
        deadline = None if timeout is None else time.monotonic() + timeout
        try:
            future = self._dispatch.submit(
                partial(self._run_admitted, outcome, query, required_order,
                        parallelism, batch_size, binds, deadline,
                        tr, root, queue_span))
        except BaseException:
            # The dispatch pool refused the submission (shutdown race
            # past the _closed check): release the admission slot this
            # query holds, or `queued` inflates forever.
            self.metrics.abandon_queued(outcome)
            self.breaker.abort_probe()
            if tr is not None:
                tr.finish(queue_span)
                root.tag(disposition="failed")
                tr.finish(root)
            raise
        # A submission cancelled before its slot started never reaches
        # _run_admitted; reclaim its queue slot (and any reserved probe)
        # here — the client wait path claims the outcome as its timeout.
        def _reclaim_cancelled(f) -> None:
            if f.cancelled():
                self.metrics.unqueue(outcome)
                self.breaker.abort_probe()
        future.add_done_callback(_reclaim_cancelled)
        return future, timeout, outcome

    # -- client APIs ------------------------------------------------------------------
    async def submit(self, query, required_order: Optional[SortOrder] = None,
                     *, parallelism: Optional[int] = None,
                     batch_size: Optional[int] = None,
                     timeout: Optional[float] = None,
                     tenant: Optional[str] = None,
                     trace: Optional[bool] = None,
                     **binds: Any) -> QueryResult:
        """Serve one query from an asyncio client.

        Raises :class:`QueryRejected` immediately when the wait queue is
        full (or the tenant is over quota, or the circuit is open —
        each with a ``retry_after`` hint), :class:`QueryTimeout` when
        the deadline passes first.  With tracing on (``obs=`` at server
        construction; per-call ``trace=`` overrides the configured
        default) the result is a :class:`TracedResult`.
        """
        future, timeout, outcome = self._dispatch_query(
            query, required_order, parallelism, batch_size, binds, timeout,
            tenant, trace)
        wrapped = asyncio.wrap_future(future)
        try:
            if timeout is None:
                return await wrapped
            return await asyncio.wait_for(wrapped, timeout)
        except (TimeoutError, QueryTimeout) as exc:
            self.metrics.count_timeout(outcome)
            raise QueryTimeout(str(exc) or "query deadline expired") from None

    def execute(self, query, required_order: Optional[SortOrder] = None,
                *, parallelism: Optional[int] = None,
                batch_size: Optional[int] = None,
                timeout: Optional[float] = None,
                tenant: Optional[str] = None,
                trace: Optional[bool] = None, **binds: Any) -> QueryResult:
        """Serve one query from a plain (non-async) thread client."""
        future, timeout, outcome = self._dispatch_query(
            query, required_order, parallelism, batch_size, binds, timeout,
            tenant, trace)
        try:
            return future.result(timeout)
        except (TimeoutError, QueryTimeout) as exc:
            future.cancel()
            self.metrics.count_timeout(outcome)
            raise QueryTimeout(str(exc) or "query deadline expired") from None

    # -- observability -----------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Flat serving metrics: admission, latency, utilization, shared
        cache, per-tenant counters, circuit-breaker state, aggregated
        session/optimizer counters, backend config."""
        out: dict[str, Any] = dict(self.metrics.as_dict(self.max_inflight))
        out.update(self.breaker.as_dict())
        out.update(self.backend.describe())
        out["max_inflight_limit"] = self.max_inflight
        out["queue_limit"] = self.queue_limit
        out["parallelism"] = self.parallelism
        out["tenants"] = self.metrics.tenants_dict()
        with self._sessions_lock:
            sessions = list(self._sessions)
        out["sessions"] = len(sessions)
        totals = SessionMetrics()
        for session in sessions:
            for f in fields(SessionMetrics):
                setattr(totals, f.name, getattr(totals, f.name)
                        + getattr(session.metrics, f.name))
        for f in fields(SessionMetrics):
            out[f.name] = getattr(totals, f.name)
        out["cache_size"] = len(self.cache)
        out["cache_capacity"] = self.cache.capacity
        out["cache_ttl_seconds"] = self.cache.ttl_seconds
        for name, value in self.cache.stats.as_dict().items():
            out[f"cache_{name}"] = value
        # Process-global kernel/columnar telemetry — taken once from the
        # shared caches, NOT summed per session (sessions all read the
        # same process-wide counters; summing would multiply them).
        out.update(kernel_stats())
        if self.tracer is not None:
            out["traces_started"] = self.tracer.traces_started
        if self.slow_log is not None:
            out["slow_queries_recorded"] = self.slow_log.recorded
            out["slow_queries_retained"] = len(self.slow_log)
        return out

    def metrics_text(self) -> str:
        """:meth:`stats` rendered as a Prometheus-style exposition page
        (see :func:`repro.obs.export.prometheus_text`)."""
        return prometheus_text(self.stats())

    def snapshot(self, indent: Optional[int] = None) -> str:
        """:meth:`stats` as a stable, versioned JSON document."""
        return json_snapshot(self.stats(), indent=indent)

    def slow_queries(self) -> list[dict]:
        """The slow-query ring buffer, oldest first (empty without
        ``obs=``)."""
        return self.slow_log.entries() if self.slow_log is not None else []
