"""Lightweight per-query tracing: spans, traces, and ambient propagation.

One served query produces one :class:`Trace` — a tree of
:class:`Span` records covering every layer it crossed: admission, queue
wait, the four optimizer pipeline stages, plan-cache hit/miss, backend
dispatch, per-shard worker execution and the serving-side merge.  The
design constraints, in order:

* **Near-zero cost when disabled.**  Instrumented call sites use
  :func:`child_span`, which reads one :class:`~contextvars.ContextVar`
  and returns a shared no-op context manager when no trace is active —
  no allocation, no clock read.  A server built without an
  observability config never starts a trace, so every instrumented
  layer stays on that path.
* **Injectable clock.**  :class:`Tracer` and :class:`Trace` take any
  ``clock() -> float`` (default :func:`time.perf_counter`, monotonic);
  tests drive a fake clock and assert exact durations.
* **Cross-process reattachment.**  Span timestamps are *offsets from
  the trace's epoch*, not absolute clock readings, because
  ``perf_counter`` values are not comparable across processes.  A pool
  worker builds its own :class:`Trace` carrying the parent's trace id
  and a span-id prefix (``"<parent span id>."`` — collision-free by
  construction), ships its spans back as picklable records (exactly
  like counter tallies), and the parent re-attaches them with
  :meth:`Trace.attach`, rebasing the worker-relative offsets onto the
  dispatch span's start.

Ambient propagation is explicit at thread boundaries: the dispatch
thread enters ``trace.activate(root_span)`` and every nested
:func:`child_span` (optimizer stages, backend dispatch, merge) parents
itself correctly without signatures changing hands.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Callable, Iterator, Optional

__all__ = ["Span", "Trace", "Tracer", "active_span", "child_span"]

#: The ambient span of the current thread of control (``None`` outside
#: any trace).  Explicitly re-bound — never implicitly inherited — when
#: a query crosses the dispatch-thread boundary.
_ACTIVE: ContextVar[Optional["Span"]] = ContextVar(
    "repro_active_span", default=None)

#: Span record layout shipped across process boundaries:
#: ``(span_id, parent_id, name, start, end, tags)`` with *tags* a sorted
#: tuple of ``(key, value)`` pairs — plain picklable builtins only.
SpanRecord = tuple


class Span:
    """One timed operation inside a trace.

    ``start``/``end`` are seconds since the owning trace's epoch
    (``end is None`` while the span is open).  ``tags`` carry small
    structured annotations (cache_hit, shard index, row counts, error
    class); :meth:`tag` is chainable and safe on finished spans.
    """

    __slots__ = ("trace", "span_id", "parent_id", "name", "start", "end",
                 "tags")

    def __init__(self, trace: "Trace", span_id: str,
                 parent_id: Optional[str], name: str, start: float,
                 tags: Optional[dict] = None) -> None:
        self.trace = trace
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.tags: dict[str, Any] = dict(tags) if tags else {}

    @property
    def trace_id(self) -> str:
        return self.trace.trace_id

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def tag(self, **tags: Any) -> "Span":
        self.tags.update(tags)
        return self

    def to_record(self) -> SpanRecord:
        return (self.span_id, self.parent_id, self.name, self.start,
                self.end, tuple(sorted(self.tags.items())))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dur = f"{self.duration * 1000:.2f}ms" if self.end is not None \
            else "open"
        return f"Span({self.name!r} id={self.span_id} {dur})"


class _NullSpan:
    """Shared no-op stand-in returned by :func:`child_span` when no
    trace is active: a context manager yielding itself, with a no-op
    :meth:`tag` — so instrumented code never branches on enablement."""

    __slots__ = ()
    span_id = None
    name = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def tag(self, **tags: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class Trace:
    """The span tree of one traced query.

    Thread-safe: the admission path, the dispatch thread and the
    backend's result-gathering all append spans concurrently.  Spans are
    kept in creation/attachment order; :meth:`render` sorts siblings by
    start offset.
    """

    def __init__(self, trace_id: str,
                 clock: Callable[[], float] = time.perf_counter,
                 id_prefix: str = "") -> None:
        self.trace_id = trace_id
        self._clock = clock
        self._epoch = clock()
        self._prefix = id_prefix
        self._counter = itertools.count(1)
        self._lock = threading.Lock()
        self.spans: list[Span] = []

    # -- recording -------------------------------------------------------------------
    def _now(self) -> float:
        return self._clock() - self._epoch

    def begin(self, name: str, parent_id: Optional[str] = None,
              **tags: Any) -> Span:
        """Open a span (caller finishes it explicitly — used where the
        open and close sites live on different threads, e.g. the queue
        wait between admission and dispatch)."""
        with self._lock:
            span_id = f"{self._prefix}{next(self._counter)}"
            span = Span(self, span_id, parent_id, name, self._now(), tags)
            self.spans.append(span)
        return span

    def finish(self, span: Span) -> Span:
        span.end = self._now()
        return span

    @contextmanager
    def span(self, name: str, parent: Optional[Span] = None,
             **tags: Any) -> Iterator[Span]:
        """Open a span, make it ambient for the dynamic extent, finish
        it on exit (even on error, tagging the error class)."""
        parent_id = parent.span_id if parent is not None else None
        s = self.begin(name, parent_id, **tags)
        token = _ACTIVE.set(s)
        try:
            yield s
        except BaseException as exc:
            s.tag(error=type(exc).__name__)
            raise
        finally:
            _ACTIVE.reset(token)
            self.finish(s)

    @contextmanager
    def activate(self, span: Span) -> Iterator[Span]:
        """Make *span* the ambient parent for the dynamic extent without
        opening or closing anything — the explicit hand-off used when a
        query crosses onto its dispatch thread."""
        token = _ACTIVE.set(span)
        try:
            yield span
        finally:
            _ACTIVE.reset(token)

    # -- cross-process reattachment ----------------------------------------------------
    def to_records(self) -> list[SpanRecord]:
        with self._lock:
            return [s.to_record() for s in self.spans]

    def attach(self, records: list, base_offset: float = 0.0) -> None:
        """Graft shipped span records (a worker's :meth:`to_records`)
        into this trace, rebasing their trace-relative offsets by
        *base_offset* (the dispatch span's start — worker clocks are not
        comparable with ours, so the worker's timeline is anchored where
        its dispatch began)."""
        grafted = []
        for span_id, parent_id, name, start, end, tags in records:
            span = Span(self, span_id, parent_id, name,
                        start + base_offset, dict(tags))
            span.end = None if end is None else end + base_offset
            grafted.append(span)
        with self._lock:
            self.spans.extend(grafted)

    # -- reading ---------------------------------------------------------------------
    @property
    def root(self) -> Optional[Span]:
        with self._lock:
            for span in self.spans:
                if span.parent_id is None:
                    return span
        return None

    def find(self, name: str) -> Optional[Span]:
        with self._lock:
            for span in self.spans:
                if span.name == name:
                    return span
        return None

    def find_all(self, name: str) -> list[Span]:
        with self._lock:
            return [s for s in self.spans if s.name == name]

    def render(self) -> str:
        """The span tree as indented text, one span per line, siblings
        in start order — the slow-query log's human-facing form."""
        with self._lock:
            spans = list(self.spans)
        by_id = {s.span_id: s for s in spans}
        children: dict[Optional[str], list[Span]] = {}
        for s in spans:
            # Orphans (parent not attached — e.g. a failed worker whose
            # records never arrived) render at the root level.
            key = s.parent_id if s.parent_id in by_id else None
            children.setdefault(key, []).append(s)
        lines: list[str] = [f"trace {self.trace_id}"]

        def emit(span: Span, depth: int) -> None:
            dur = "  (open)" if span.end is None \
                else f"  {span.duration * 1000.0:.2f}ms"
            tags = "".join(f" {k}={v}" for k, v in sorted(span.tags.items()))
            lines.append(f"{'  ' * depth}- {span.name} "
                         f"[{span.start * 1000.0:.2f}ms]{dur}{tags}")
            for child in sorted(children.get(span.span_id, ()),
                                key=lambda s: (s.start, s.span_id)):
                emit(child, depth + 1)

        for top in sorted(children.get(None, ()),
                          key=lambda s: (s.start, s.span_id)):
            emit(top, 1)
        return "\n".join(lines)


class Tracer:
    """Trace factory: one per server (or per test).

    ``enabled=False`` makes :meth:`start` return ``None`` — the caller
    then never activates anything and every :func:`child_span` down the
    stack takes the shared no-op path.
    """

    def __init__(self, enabled: bool = True,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self.enabled = enabled
        self._clock = clock
        self._lock = threading.Lock()
        self._counter = itertools.count(1)
        #: Total traces handed out (observable through server stats).
        self.traces_started = 0

    def start(self, name: str = "trace") -> Optional[Trace]:
        if not self.enabled:
            return None
        with self._lock:
            n = next(self._counter)
            self.traces_started += 1
        return Trace(f"{name}-{n:06d}", clock=self._clock)


def active_span() -> Optional[Span]:
    """The ambient span of the current thread of control (``None``
    outside any trace) — how backends discover an in-progress trace
    without ``run_plan`` growing tracing parameters."""
    return _ACTIVE.get()


def child_span(name: str, **tags: Any):
    """Context manager for a child of the ambient span.

    The instrumentation primitive every layer uses: inside an active
    trace it opens a child span (which becomes ambient for its extent);
    outside one it returns the shared no-op span.  Cost when tracing is
    off: one ContextVar read.
    """
    parent = _ACTIVE.get()
    if parent is None:
        return _NULL_SPAN
    return parent.trace.span(name, parent=parent, **tags)
