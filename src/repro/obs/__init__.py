"""Observability: per-query tracing, EXPLAIN ANALYZE, metrics exposition.

The serving stack makes cost-based decisions under live traffic —
admission, circuit breaking, feedback-driven re-optimization — and this
package is the window into them:

* :mod:`repro.obs.trace` — :class:`Tracer`/:class:`Trace`/:class:`Span`
  plus the ambient :func:`child_span`/:func:`active_span` primitives
  every instrumented layer uses (near-zero cost when disabled, spans
  re-attach across process boundaries);
* :mod:`repro.obs.analyze` — :class:`ExplainAnalyze`, the plan tree
  annotated with measured rows/wall-time per operator;
* :mod:`repro.obs.export` — Prometheus-style text exposition, stable
  JSON snapshots and the bounded :class:`SlowQueryLog`.

:class:`ObservabilityConfig` is the one knob bundle the server takes
(``QueryServer(..., obs=ObservabilityConfig())`` or simply
``obs=True``); a server built without it runs the exact pre-tracing
code paths.  See ``docs/observability.md``.
"""

from dataclasses import dataclass
from typing import Optional

from .export import SlowQueryLog, json_snapshot, prometheus_text
from .trace import Span, Trace, Tracer, active_span, child_span


def __getattr__(name: str):
    # Lazy: analyze pulls in the engine's lowering module, and the
    # engine itself imports repro.obs.trace — resolving ExplainAnalyze
    # on first use keeps the import graph acyclic.
    if name == "ExplainAnalyze":
        from .analyze import ExplainAnalyze
        return ExplainAnalyze
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ExplainAnalyze",
    "ObservabilityConfig",
    "SlowQueryLog",
    "Span",
    "Trace",
    "Tracer",
    "active_span",
    "child_span",
    "json_snapshot",
    "prometheus_text",
]


@dataclass
class ObservabilityConfig:
    """Server-side observability knobs (see :class:`QueryServer`).

    ``tracer=None`` means the server builds its own (enabled)
    :class:`Tracer`; inject one with a fake clock for deterministic
    tests.  ``trace_queries`` is the per-query default — individual
    ``submit``/``execute`` calls may override it with ``trace=``.
    ``meter_timing`` extends the per-operator row meters with wall
    time/batch counts on traced queries (opt-in because wall times are
    not deterministic, unlike every other tally).
    """

    tracer: Optional[Tracer] = None
    trace_queries: bool = True
    meter_timing: bool = True
    slow_query_seconds: float = 0.1
    slow_log_capacity: int = 64
