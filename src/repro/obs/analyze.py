"""EXPLAIN ANALYZE: the physical plan annotated with measured reality.

The optimizer's whole output is a plan shape justified by *estimates*;
this module puts the measured truth next to every node so enforcer
placement decisions (per-shard SRS/MRS under a MergeExchange vs one
post-union sort) are directly legible.  Inputs are the per-operator
meters an execution leaves on its
:class:`~repro.engine.context.ExecutionContext`:

* ``operator_rows`` — ``tag -> (estimated, actual)`` row counts, always
  collected (PR 9);
* ``operator_times`` — ``tag -> (seconds, batches)`` wall time, only
  collected when the context was built with ``meter_timing=True``
  (timing is opt-in so default tallies stay bit-identical across
  backends and runs).

Meter tags aggregate: the four shard pipelines of one sharded scan all
meter under one ``"ShardedScan:trades"`` tag, and per-shard worker
contributions fold into the same cells the local merge charges.  The
renderer therefore counts how many plan nodes share each tag and marks
aggregated lines with ``xN`` rather than pretending to split a shared
total — honest output over pretty output.

Wall times are **inclusive** (time spent pulling this operator's
batches, children included), like PostgreSQL's ``actual time``.
"""

from __future__ import annotations

from typing import Any, Optional

from ..engine.lowering import meter_for

__all__ = ["ExplainAnalyze"]


class ExplainAnalyze:
    """One execution's estimated-vs-actual report over its plan tree."""

    def __init__(self, plan, operator_rows: dict, operator_times: dict,
                 wall_seconds: float, row_count: int,
                 rows: Optional[list] = None) -> None:
        self.plan = plan
        #: ``tag -> (estimated, actual)`` output rows, summed per tag.
        self.operator_rows = dict(operator_rows)
        #: ``tag -> (seconds, batches)`` inclusive wall time, summed per
        #: tag; empty when the execution did not meter timing.
        self.operator_times = dict(operator_times)
        self.wall_seconds = wall_seconds
        self.row_count = row_count
        #: The result rows, when the caller chose to keep them.
        self.rows = rows

    # -- per-node annotation ------------------------------------------------------------
    def _tag_multiplicity(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for node in self.plan.walk():
            meter = meter_for(node)
            if meter is not None:
                counts[meter[0]] = counts.get(meter[0], 0) + 1
        return counts

    def node_annotation(self, node, multiplicity: dict[str, int]) -> str:
        meter = meter_for(node)
        if meter is None:
            return "(not metered)"
        tag = meter[0]
        cell = self.operator_rows.get(tag)
        if cell is None:
            return "(never executed)"
        estimated, actual = cell
        shared = multiplicity.get(tag, 1)
        parts = [f"rows est={estimated} act={actual}"]
        tcell = self.operator_times.get(tag)
        if tcell is not None:
            seconds, batches = tcell
            parts.append(f"time={seconds * 1000.0:.2f}ms "
                         f"batches={batches}")
        if shared > 1:
            parts.append(f"x{shared} nodes share this meter")
        return "(" + ", ".join(parts) + ")"

    # -- rendering ---------------------------------------------------------------------
    def render(self, with_cost: bool = True) -> str:
        multiplicity = self._tag_multiplicity()
        lines = [f"EXPLAIN ANALYZE  "
                 f"(total {self.wall_seconds * 1000.0:.2f}ms, "
                 f"{self.row_count} rows)"]

        def emit(node, indent: int) -> None:
            pad = "  " * indent
            cost = f" cost={node.total_cost:,.0f}" if with_cost else ""
            order = f" [order: {node.order}]" if node.order else ""
            lines.append(f"{pad}{node.op} ({node.describe()}){order}{cost}  "
                         f"{self.node_annotation(node, multiplicity)}")
            for child in node.children:
                emit(child, indent + 1)

        emit(self.plan, 1)
        return "\n".join(lines)

    def node_reports(self) -> list[dict[str, Any]]:
        """Machine-readable per-node rows (pre-order), for tests and
        JSON consumers."""
        multiplicity = self._tag_multiplicity()
        out = []
        for node in self.plan.walk():
            meter = meter_for(node)
            report: dict[str, Any] = {"op": node.op, "tag": None,
                                      "estimated_rows": None,
                                      "actual_rows": None,
                                      "seconds": None, "batches": None,
                                      "shared_nodes": 1}
            if meter is not None:
                tag = meter[0]
                report["tag"] = tag
                report["shared_nodes"] = multiplicity.get(tag, 1)
                cell = self.operator_rows.get(tag)
                if cell is not None:
                    report["estimated_rows"] = cell[0]
                    report["actual_rows"] = cell[1]
                tcell = self.operator_times.get(tag)
                if tcell is not None:
                    report["seconds"] = tcell[0]
                    report["batches"] = tcell[1]
            out.append(report)
        return out

    def __str__(self) -> str:
        return self.render()
