"""Metrics exposition: Prometheus-style text, stable JSON snapshots, and
the bounded slow-query log.

Everything here operates on the plain dict ``QueryServer.stats()``
already returns — the exposition layer adds *formats*, not new
collection paths:

* :func:`prometheus_text` — the text exposition format scrapers expect:
  numeric scalars become gauges, string states become ``*_info`` series
  with a value label, per-tenant sub-dicts become tenant-labelled
  samples, and the server's log-spaced latency histogram becomes a
  standard ``_bucket``/``_sum``/``_count`` triple (cumulative ``le``
  buckets, ``+Inf`` last).
* :func:`json_snapshot` — a stable (sorted-keys, versioned) JSON
  document of the same stats, safe to diff across scrapes; non-finite
  floats are sanitized (JSON has no ``Infinity``).
* :class:`SlowQueryLog` — a bounded, thread-safe ring of the slowest
  recent queries with their captured traces (threshold-gated, so the
  steady state records nothing).
"""

from __future__ import annotations

import json
import math
import threading
from collections import deque
from typing import Any, Optional

__all__ = ["SlowQueryLog", "json_snapshot", "prometheus_text"]

#: Bumped when the snapshot's shape changes incompatibly.
SNAPSHOT_SCHEMA_VERSION = 1


def _metric_name(prefix: str, key: str) -> str:
    return f"{prefix}_{key}".replace(".", "_").replace("-", "_")


def _fmt(value: float) -> str:
    if value != value or value in (math.inf, -math.inf):  # NaN / +-Inf
        return "+Inf" if value == math.inf else str(value)
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _escape_label(value: Any) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"')


def prometheus_text(stats: dict, prefix: str = "repro") -> str:
    """Render a ``QueryServer.stats()`` dict in the Prometheus text
    exposition format (one scrape's worth of output)."""
    lines: list[str] = []

    def gauge(key: str, value, labels: str = "") -> None:
        name = _metric_name(prefix, key)
        if not labels:
            lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name}{labels} {_fmt(value)}")

    histogram = stats.get("latency_histogram")
    tenants = stats.get("tenants") or {}
    for key in sorted(stats):
        value = stats[key]
        if key in ("latency_histogram", "tenants"):
            continue
        if isinstance(value, bool) or isinstance(value, (int, float)):
            gauge(key, value)
        elif isinstance(value, str):
            name = _metric_name(prefix, f"{key}_info")
            lines.append(f"# TYPE {name} gauge")
            lines.append(f'{name}{{value="{_escape_label(value)}"}} 1')
        # Nested structures other than the two handled below are
        # deliberately not exposed — exposition stays flat.

    if tenants:
        keys = sorted({k for t in tenants.values() for k in t})
        for key in keys:
            name = _metric_name(prefix, f"tenant_{key}")
            lines.append(f"# TYPE {name} gauge")
            for tenant in sorted(tenants):
                value = tenants[tenant].get(key)
                if isinstance(value, (int, float)) \
                        and not isinstance(value, bool):
                    lines.append(
                        f'{name}{{tenant="{_escape_label(tenant)}"}} '
                        f"{_fmt(value)}")

    if histogram:
        name = _metric_name(prefix, "latency_seconds")
        lines.append(f"# TYPE {name} histogram")
        total = histogram[-1][1]
        # Trim the all-full tail: once a bucket's cumulative count
        # reaches the total, later bounds add no information — emit one
        # saturated bucket, then jump to +Inf.
        saturated = False
        for bound, cumulative in histogram[:-1]:
            if saturated and cumulative >= total:
                continue
            saturated = cumulative >= total
            lines.append(f'{name}_bucket{{le="{_fmt(float(bound))}"}} '
                         f"{cumulative}")
        lines.append(f'{name}_bucket{{le="+Inf"}} {total}')
        lines.append(f"{name}_sum "
                     f"{_fmt(float(stats.get('latency_sum_seconds', 0.0)))}")
        lines.append(f"{name}_count {total}")
    return "\n".join(lines) + "\n"


def _sanitize(value: Any) -> Any:
    """JSON-safe deep copy: non-finite floats become strings, unknown
    objects their ``repr`` — a snapshot must always serialize."""
    if isinstance(value, dict):
        return {str(k): _sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(v) for v in value]
    if isinstance(value, float) and not math.isfinite(value):
        return "+Inf" if value == math.inf else \
            ("-Inf" if value == -math.inf else "NaN")
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


def json_snapshot(stats: dict, indent: Optional[int] = None) -> str:
    """A stable, versioned JSON document of one stats scrape."""
    doc = {"schema_version": SNAPSHOT_SCHEMA_VERSION,
           "stats": _sanitize(stats)}
    return json.dumps(doc, sort_keys=True, indent=indent)


class SlowQueryLog:
    """Bounded ring of the most recent threshold-crossing queries.

    ``observe`` is called once per completed query with its latency and
    (optionally) its trace; entries below the threshold are dropped
    without recording, so a healthy server's log stays empty and costs
    one float compare per query.  The ring holds the *most recent*
    ``capacity`` slow queries — old entries age out.
    """

    def __init__(self, capacity: int = 64,
                 threshold_seconds: float = 0.1) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if threshold_seconds < 0:
            raise ValueError("threshold_seconds must be >= 0")
        self.capacity = capacity
        self.threshold_seconds = threshold_seconds
        self._lock = threading.Lock()
        self._ring: deque[dict] = deque(maxlen=capacity)
        #: Total threshold crossings ever (>= len(entries())).
        self.recorded = 0

    def observe(self, *, fingerprint: str, tenant: str,
                latency_seconds: float, backend: str,
                trace: Any = None) -> bool:
        if latency_seconds < self.threshold_seconds:
            return False
        entry = {
            "fingerprint": fingerprint,
            "tenant": tenant,
            "latency_seconds": latency_seconds,
            "backend": backend,
            "trace_id": getattr(trace, "trace_id", None),
            "trace": trace,
        }
        with self._lock:
            self._ring.append(entry)
            self.recorded += 1
        return True

    def entries(self) -> list[dict]:
        """Most recent last; shallow copies, safe to mutate."""
        with self._lock:
            return [dict(e) for e in self._ring]

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)
