"""Workload generators for the paper's experiments."""

from .consolidation import (
    CATALOG_JOIN,
    RATING_JOIN,
    consolidation_catalog,
    consolidation_stats_catalog,
    example1_query,
)
from .synthetic import (
    MANY_JOIN_SIZES,
    identical_r_tables,
    many_join_catalog,
    many_join_query,
    query4,
    r_tables_stats_catalog,
    segmented_catalog,
    segmented_table_rows,
)
from .tpch import (
    add_query1_indexes,
    add_query2_indexes,
    add_query3_indexes,
    tpch_catalog,
    tpch_stats_catalog,
)
from .trading import (
    Q5_JOIN,
    Q6_JOIN,
    query5,
    query6,
    trading_catalog,
    trading_stats_catalog,
)

__all__ = [
    "CATALOG_JOIN",
    "Q5_JOIN",
    "Q6_JOIN",
    "RATING_JOIN",
    "add_query1_indexes",
    "add_query2_indexes",
    "add_query3_indexes",
    "consolidation_catalog",
    "consolidation_stats_catalog",
    "example1_query",
    "MANY_JOIN_SIZES",
    "identical_r_tables",
    "many_join_catalog",
    "many_join_query",
    "query4",
    "query5",
    "query6",
    "r_tables_stats_catalog",
    "segmented_catalog",
    "segmented_table_rows",
    "tpch_catalog",
    "tpch_stats_catalog",
    "trading_catalog",
    "trading_stats_catalog",
]
