"""Example 1's data-consolidation workload (Section 3, Figures 1–2).

Two catalog tables from different sources, joined on four attributes,
plus a small rating table; the ORDER BY spans seven columns.  The paper
uses:

* ``catalog1`` — 2M rows × 100 B, clustered on ``year``;
* ``catalog2`` — 2M rows × 80 B, clustered on ``make``;
* ``rating``   — 2K rows × 40 B, with a covering index on ``make``
  including ``year`` and ``rating``.

The stats-only variant carries exactly those numbers; the materialised
variant scales them down for executable demos.
"""

from __future__ import annotations

import random
from typing import Optional

from ..core.sort_order import SortOrder
from ..expr import JoinPredicate, col
from ..logical import Query
from ..storage import Catalog, Schema, SystemParameters, TableStats

MAKES = 120
YEARS = 50
CITIES = 500
COLORS = 25

CATALOG1_SCHEMA = Schema.of(
    ("c1_make", "str", 12),
    ("c1_year", "int", 4),
    ("c1_city", "str", 16),
    ("c1_color", "str", 8),
    ("c1_sellreason", "str", 60),
)

CATALOG2_SCHEMA = Schema.of(
    ("c2_make", "str", 12),
    ("c2_year", "int", 4),
    ("c2_city", "str", 16),
    ("c2_color", "str", 8),
    ("c2_breakdowns", "int", 40),
)

RATING_SCHEMA = Schema.of(
    ("r_make", "str", 12),
    ("r_year", "int", 4),
    ("r_rating", "int", 24),
)

#: The four-attribute join between the two catalogs.
CATALOG_JOIN = [("c1_city", "c2_city"), ("c1_make", "c2_make"),
                ("c1_year", "c2_year"), ("c1_color", "c2_color")]
#: The two-attribute join with the rating table.
RATING_JOIN = [("c1_make", "r_make"), ("c1_year", "r_year")]


def consolidation_stats_catalog(
        params: Optional[SystemParameters] = None) -> Catalog:
    """Paper-scale (2M/2M/2K rows) stats-only catalog."""
    catalog = Catalog(params or SystemParameters())
    catalog.create_table(
        "catalog1", CATALOG1_SCHEMA,
        stats=TableStats(2_000_000, {
            "c1_make": MAKES, "c1_year": YEARS, "c1_city": CITIES,
            "c1_color": COLORS, "c1_sellreason": 1_000_000}),
        clustering_order=SortOrder(["c1_year"]))
    catalog.create_table(
        "catalog2", CATALOG2_SCHEMA,
        stats=TableStats(2_000_000, {
            "c2_make": MAKES, "c2_year": YEARS, "c2_city": CITIES,
            "c2_color": COLORS, "c2_breakdowns": 100}),
        clustering_order=SortOrder(["c2_make"]))
    catalog.create_table(
        "rating", RATING_SCHEMA,
        stats=TableStats(2_000, {
            "r_make": MAKES, "r_year": YEARS, "r_rating": 10}),
        clustering_order=SortOrder(["r_make", "r_year"]),
        primary_key=["r_make", "r_year"])
    catalog.create_index("rating_make_cov", "rating", SortOrder(["r_make"]),
                         included=["r_year", "r_rating"])
    return catalog


def consolidation_catalog(scale: float = 0.01, seed: int = 7,
                          params: Optional[SystemParameters] = None) -> Catalog:
    """Materialised, scaled-down consolidation catalog."""
    rng = random.Random(seed)
    catalog = Catalog(params or SystemParameters())
    n = max(1_000, int(2_000_000 * scale))
    makes = [f"make{m:03d}" for m in range(MAKES)]
    cities = [f"city{c:03d}" for c in range(CITIES)]
    colors = [f"col{c:02d}" for c in range(COLORS)]

    def listing():
        return (rng.choice(makes), rng.randrange(1970, 1970 + YEARS),
                rng.choice(cities), rng.choice(colors))

    rows1 = [(*listing(), f"reason-{i}") for i in range(n)]
    # Half of catalog2 re-lists catalog1 entries (the consolidation
    # scenario: the same car advertised on both sources), so the
    # four-attribute join has matches even at small scales.
    rows2 = []
    for i in range(n):
        if i % 2 == 0:
            make, year, city, color, _ = rows1[rng.randrange(n)]
            rows2.append((make, year, city, color, rng.randrange(100)))
        else:
            rows2.append((*listing(), rng.randrange(100)))
    rating_rows = [(m, y, rng.randrange(1, 11))
                   for m in makes for y in range(1970, 1970 + YEARS)
                   if rng.random() < 2_000 / (MAKES * YEARS)]
    catalog.create_table("catalog1", CATALOG1_SCHEMA, rows=rows1,
                         clustering_order=SortOrder(["c1_year"]))
    catalog.create_table("catalog2", CATALOG2_SCHEMA, rows=rows2,
                         clustering_order=SortOrder(["c2_make"]))
    catalog.create_table("rating", RATING_SCHEMA, rows=rating_rows,
                         clustering_order=SortOrder(["r_make", "r_year"]),
                         primary_key=["r_make", "r_year"])
    catalog.create_index("rating_make_cov", "rating", SortOrder(["r_make"]),
                         included=["r_year", "r_rating"])
    return catalog


def example1_query() -> Query:
    """The paper's Example 1 (join of both catalogs and rating, 7-column
    ORDER BY)."""
    return (Query.table("catalog1")
            .join("catalog2", on=CATALOG_JOIN)
            .join("rating", on=RATING_JOIN)
            .order_by("c1_make", "c1_year", "c1_color", "c1_city",
                      "c1_sellreason", "c2_breakdowns", "r_rating"))
