"""Trading workload for Queries 5 and 6 (Experiment B3).

* **Query 5** — total executed value per order: a five-attribute
  self-join of a transactions table (``TRAN T1 ⋈ TRAN T2``) followed by
  a GROUP BY on the same five attributes.  Self-joins are expressed via
  catalog aliases ``tran_t1`` / ``tran_t2`` (column prefixes ``t1_`` /
  ``t2_``).

* **Query 6** — basket analytics: a three-attribute join
  ``BASKET ⋈ ANALYTICS``.

The paper does not publish these tables' sizes; we pick sizes that put
the sorts firmly in external territory at paper scale and give the
tables clustering/covering orders that *partially* match the join
attributes — the situation PYRO-O exploits and PYRO-P's arbitrary
secondary orders miss (Figure 15's Q5/Q6 bars).
"""

from __future__ import annotations

import random
from typing import Optional

from ..core.sort_order import SortOrder
from ..expr import col
from ..expr.aggregates import AggSpec, agg_min, agg_sum
from ..logical import Query
from ..storage import Catalog, Schema, SystemParameters, TableStats

TRAN_SCHEMA = Schema.of(
    ("userid", "int", 8),
    ("basketid", "int", 8),
    ("parentorderid", "int", 8),
    ("waveid", "int", 8),
    ("childorderid", "int", 8),
    ("quantity", "int", 8),
    ("price", "num", 8),
    ("trantype", "str", 10),
)

BASKET_SCHEMA = Schema.of(
    ("b_prodtype", "str", 10),
    ("b_symbol", "str", 12),
    ("b_exchange", "str", 8),
    ("b_qty", "int", 8),
    ("b_note", "str", 40),
)

ANALYTICS_SCHEMA = Schema.of(
    ("a_prodtype", "str", 10),
    ("a_symbol", "str", 12),
    ("a_exchange", "str", 8),
    ("a_beta", "num", 8),
    ("a_vol", "num", 8),
)

#: Query 5's join attribute pairs (t1 side first).
Q5_JOIN = [("t1_userid", "t2_userid"), ("t1_parentorderid", "t2_parentorderid"),
           ("t1_basketid", "t2_basketid"), ("t1_waveid", "t2_waveid"),
           ("t1_childorderid", "t2_childorderid")]

#: Query 6's join attribute pairs.
Q6_JOIN = [("b_prodtype", "a_prodtype"), ("b_symbol", "a_symbol"),
           ("b_exchange", "a_exchange")]


ORDER_KEY = ("userid", "basketid", "parentorderid", "waveid", "childorderid")


def _tran_distinct(num_rows: int) -> dict[str, int]:
    """Value distributions for TRAN.

    ``userid``/``basketid`` are deliberately low-cardinality (trading
    desks, program baskets) so that partial-sort segments after a one- or
    two-attribute prefix still exceed sort memory: only an interesting
    order matching the clustering prefix *deeply* avoids external sort
    I/O, which is what separates PYRO-O from PYRO-P's arbitrary
    secondary orders in Figure 15.
    """
    return {
        "userid": max(2, num_rows // 1_250_000),
        "basketid": max(2, num_rows // 850_000),
        "parentorderid": max(2, num_rows // 20),
        "waveid": max(2, num_rows // 10),
        "childorderid": max(2, num_rows // 4),
        "quantity": 1000,
        "price": 10_000,
        "trantype": 3,
    }


def _tran_group_distinct(num_rows: int) -> dict[frozenset, int]:
    # Several transaction rows (New/Executed/...) share one logical order.
    return {frozenset(ORDER_KEY): max(2, num_rows // 3)}


def _register_tran_aliases(catalog: Catalog) -> None:
    catalog.alias_table("tran", "tran_t1", "t1_")
    catalog.alias_table("tran", "tran_t2", "t2_")
    # The clustering order carries over to the aliases; the covering
    # index must be re-registered per alias.
    for prefix, alias in (("t1_", "tran_t1"), ("t2_", "tran_t2")):
        catalog.create_index(
            f"{alias}_cov", alias,
            SortOrder([f"{prefix}userid", f"{prefix}basketid",
                       f"{prefix}parentorderid"]),
            included=[f"{prefix}waveid", f"{prefix}childorderid",
                      f"{prefix}quantity", f"{prefix}price",
                      f"{prefix}trantype"])


def trading_stats_catalog(params: Optional[SystemParameters] = None,
                          tran_rows: int = 10_000_000,
                          basket_rows: int = 5_000_000,
                          analytics_rows: int = 2_000_000) -> Catalog:
    """Paper-scale stats-only trading catalog.

    Sizes are chosen so that full sorts of the join inputs exceed
    sort memory (going external) while deep partial-sort segments fit —
    the regime in which the choice of interesting order matters, as in
    the paper's TPC-H setup.  The default system parameters use 2 MB of
    sort memory (500 blocks) to keep that regime at these table sizes.
    """
    catalog = Catalog(params or SystemParameters(sort_memory_blocks=500))
    catalog.create_table(
        "tran", TRAN_SCHEMA,
        stats=TableStats(tran_rows, _tran_distinct(tran_rows),
                         group_distinct=_tran_group_distinct(tran_rows)),
        clustering_order=SortOrder(["userid", "basketid", "parentorderid"]))
    _register_tran_aliases(catalog)

    catalog.create_table(
        "basket", BASKET_SCHEMA,
        stats=TableStats(basket_rows, {
            "b_prodtype": 6, "b_symbol": 5_000, "b_exchange": 20,
            "b_qty": 1_000}),
        clustering_order=SortOrder(["b_prodtype", "b_symbol", "b_exchange"]))
    catalog.create_table(
        "analytics", ANALYTICS_SCHEMA,
        stats=TableStats(analytics_rows, {
            "a_prodtype": 6, "a_symbol": 5_000, "a_exchange": 20}),
        clustering_order=SortOrder(["a_symbol"]))
    catalog.create_index(
        "analytics_cov", "analytics",
        SortOrder(["a_prodtype", "a_symbol"]),
        included=["a_exchange", "a_beta", "a_vol"])
    return catalog


def trading_catalog(scale: float = 0.02, seed: int = 31,
                    params: Optional[SystemParameters] = None) -> Catalog:
    """Materialised scaled-down trading catalog."""
    rng = random.Random(seed)
    catalog = Catalog(params or SystemParameters())
    tran_rows_n = max(2_000, int(1_000_000 * scale))
    d = _tran_distinct(tran_rows_n)

    # Generate per logical order: each (u, b, p, w, c) key gets a "New"
    # row plus one or more "Executed"/"Cancelled" rows, so the Query 5
    # self-join actually matches (as in a real trading system).
    tran_rows = []
    while len(tran_rows) < tran_rows_n:
        order = (rng.randrange(d["userid"]), rng.randrange(d["basketid"]),
                 rng.randrange(d["parentorderid"]), rng.randrange(d["waveid"]),
                 rng.randrange(d["childorderid"]))
        tran_rows.append(order + (rng.randrange(1, 1000),
                                  round(rng.uniform(1, 500), 2), "New"))
        for _ in range(rng.randrange(1, 3)):
            tran_rows.append(order + (rng.randrange(1, 1000),
                                      round(rng.uniform(1, 500), 2),
                                      rng.choice(["Executed", "Cancelled"])))
    del tran_rows[tran_rows_n:]
    tran = catalog.create_table(
        "tran", TRAN_SCHEMA, rows=tran_rows,
        clustering_order=SortOrder(["userid", "basketid", "parentorderid"]))
    tran.stats.group_distinct[frozenset(ORDER_KEY)] = len(
        {r[:5] for r in tran_rows})
    _register_tran_aliases(catalog)

    basket_n = max(1_000, int(500_000 * scale))
    symbols = [f"SYM{i:04d}" for i in range(min(5_000, basket_n // 4 + 1))]
    prodtypes = [f"PT{i}" for i in range(6)]
    exchanges = [f"EX{i}" for i in range(20)]
    basket_rows = [(rng.choice(prodtypes), rng.choice(symbols),
                    rng.choice(exchanges), rng.randrange(1, 100), "n" * 4)
                   for _ in range(basket_n)]
    catalog.create_table(
        "basket", BASKET_SCHEMA, rows=basket_rows,
        clustering_order=SortOrder(["b_prodtype", "b_symbol", "b_exchange"]))

    analytics_n = max(500, int(200_000 * scale))
    analytics_rows = [(rng.choice(prodtypes), rng.choice(symbols),
                       rng.choice(exchanges), round(rng.uniform(0, 2), 3),
                       round(rng.uniform(0, 1), 3))
                      for _ in range(analytics_n)]
    catalog.create_table("analytics", ANALYTICS_SCHEMA, rows=analytics_rows,
                         clustering_order=SortOrder(["a_symbol"]))
    catalog.create_index(
        "analytics_cov", "analytics",
        SortOrder(["a_prodtype", "a_symbol"]),
        included=["a_exchange", "a_beta", "a_vol"])
    return catalog


def query5() -> Query:
    """Total value executed for a given order (paper Query 5).

    ``OrderValue`` (T1.Quantity * T1.Price) is constant within a group —
    all five group keys identify the T1 row — so it is carried through
    the aggregation with ``min``.
    """
    t1 = Query.table("tran_t1").where(col("t1_trantype").eq("New"))
    t2 = Query.table("tran_t2").where(col("t2_trantype").eq("Executed"))
    return (t1.join(t2, on=Q5_JOIN)
            .compute(ordervalue=col("t1_quantity") * col("t1_price"),
                     execvalue=col("t2_quantity") * col("t2_price"))
            .group_by(["t1_userid", "t1_basketid", "t1_parentorderid",
                       "t1_waveid", "t1_childorderid"],
                      agg_min(col("ordervalue"), "ordervalue"),
                      agg_sum(col("execvalue"), "executedvalue")))


def query6() -> Query:
    """Basket analytics (paper Query 6): three-attribute join."""
    return Query.table("basket").join("analytics", on=Q6_JOIN)
