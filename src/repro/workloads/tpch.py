"""TPC-H-like workload generator (`lineitem`, `partsupp`, `supplier`, `part`).

The paper's execution experiments use the TPC-H 1 GB dataset (scale
factor 1: 6,000,000 lineitem rows, 800,000 partsupp rows).  We generate
a deterministic synthetic equivalent:

* **materialised** at a configurable scale factor (default 1/100) for
  the execution experiments (A1, A4, B1 runtimes), and
* **stats-only** at the paper's full scale for the optimizer-cost
  experiments — the optimizer consults only the catalog statistics, so
  the published sizes can be used without materialising 6M rows.

Foreign keys hold by construction: every ``(l_partkey, l_suppkey)``
pair appearing in lineitem exists in partsupp (TPC-H links each part to
4 suppliers via an arithmetic rule, reproduced here).
"""

from __future__ import annotations

import random
from typing import Optional

from ..core.sort_order import SortOrder
from ..storage import Catalog, Schema, SystemParameters, TableStats

#: TPC-H scale-factor-1 base cardinalities.
SF1_LINEITEM = 6_000_000
SF1_ORDERS = 1_500_000
SF1_PARTSUPP = 800_000
SF1_PART = 200_000
SF1_SUPPLIER = 10_000
SUPPLIERS_PER_PART = 4

LINEITEM_SCHEMA = Schema.of(
    ("l_orderkey", "int", 8),
    ("l_linenumber", "int", 4),
    ("l_partkey", "int", 8),
    ("l_suppkey", "int", 8),
    ("l_quantity", "int", 8),
    ("l_extendedprice", "num", 8),
    ("l_linestatus", "str", 1),
    ("l_comment", "str", 75),     # pads the row toward TPC-H's ~120 B
)

PARTSUPP_SCHEMA = Schema.of(
    ("ps_partkey", "int", 8),
    ("ps_suppkey", "int", 8),
    ("ps_availqty", "int", 8),
    ("ps_supplycost", "num", 8),
    ("ps_comment", "str", 124),   # TPC-H partsupp rows are wide (~144 B)
)

SUPPLIER_SCHEMA = Schema.of(
    ("s_suppkey", "int", 8),
    ("s_name", "str", 25),
    ("s_nationkey", "int", 4),
)

PART_SCHEMA = Schema.of(
    ("p_partkey", "int", 8),
    ("p_name", "str", 55),
    ("p_brand", "str", 10),
)


def supplier_for_part(partkey: int, j: int, num_suppliers: int) -> int:
    """TPC-H's part→supplier linkage: the j-th supplier of a part."""
    return ((partkey + j * (num_suppliers // SUPPLIERS_PER_PART + 1))
            % num_suppliers) + 1


def tpch_catalog(scale: float = 0.01, seed: int = 42,
                 params: Optional[SystemParameters] = None) -> Catalog:
    """Materialised TPC-H-like catalog at the given scale factor."""
    rng = random.Random(seed)
    catalog = Catalog(params or SystemParameters())

    num_parts = max(10, int(SF1_PART * scale))
    num_suppliers = max(SUPPLIERS_PER_PART, int(SF1_SUPPLIER * scale))
    num_lineitems = max(100, int(SF1_LINEITEM * scale))
    num_orders = max(10, int(SF1_ORDERS * scale))

    partsupp_rows = []
    for p in range(1, num_parts + 1):
        for j in range(SUPPLIERS_PER_PART):
            s = supplier_for_part(p, j, num_suppliers)
            partsupp_rows.append(
                (p, s, rng.randrange(1, 10_000), round(rng.uniform(1, 1000), 2),
                 "c" * 8))
    catalog.create_table(
        "partsupp", PARTSUPP_SCHEMA, rows=partsupp_rows,
        clustering_order=SortOrder(["ps_partkey", "ps_suppkey"]),
        primary_key=["ps_partkey", "ps_suppkey"])

    lineitem_rows = []
    for i in range(num_lineitems):
        orderkey = rng.randrange(1, num_orders + 1)
        p = rng.randrange(1, num_parts + 1)
        s = supplier_for_part(p, rng.randrange(SUPPLIERS_PER_PART), num_suppliers)
        lineitem_rows.append(
            (orderkey, i % 7 + 1, p, s, rng.randrange(1, 51),
             round(rng.uniform(1, 100_000), 2),
             "O" if rng.random() < 0.5 else "F", "x" * 8))
    lineitem = catalog.create_table(
        "lineitem", LINEITEM_SCHEMA, rows=lineitem_rows,
        clustering_order=SortOrder(["l_orderkey", "l_linenumber"]),
        primary_key=["l_orderkey", "l_linenumber"])
    # Extended statistic: (partkey, suppkey) pairs come from partsupp, so
    # their joint distinct count is far below the independence product.
    lineitem.stats.group_distinct[frozenset({"l_partkey", "l_suppkey"})] = len(
        {(r[2], r[3]) for r in lineitem_rows})

    supplier_rows = [(s, f"Supplier#{s:09d}", rng.randrange(25))
                     for s in range(1, num_suppliers + 1)]
    catalog.create_table("supplier", SUPPLIER_SCHEMA, rows=supplier_rows,
                         clustering_order=SortOrder(["s_suppkey"]),
                         primary_key=["s_suppkey"])

    part_rows = [(p, f"part {p}", f"Brand#{p % 50}")
                 for p in range(1, num_parts + 1)]
    catalog.create_table("part", PART_SCHEMA, rows=part_rows,
                         clustering_order=SortOrder(["p_partkey"]),
                         primary_key=["p_partkey"])
    return catalog


def tpch_stats_catalog(params: Optional[SystemParameters] = None) -> Catalog:
    """Stats-only TPC-H catalog at the paper's scale factor 1."""
    catalog = Catalog(params or SystemParameters())
    catalog.create_table(
        "partsupp", PARTSUPP_SCHEMA,
        stats=TableStats(SF1_PARTSUPP, {
            "ps_partkey": SF1_PART, "ps_suppkey": SF1_SUPPLIER,
            "ps_availqty": 9_999, "ps_supplycost": 100_000,
        }),
        clustering_order=SortOrder(["ps_partkey", "ps_suppkey"]),
        primary_key=["ps_partkey", "ps_suppkey"])
    catalog.create_table(
        "lineitem", LINEITEM_SCHEMA,
        stats=TableStats(SF1_LINEITEM, {
            "l_orderkey": SF1_ORDERS, "l_linenumber": 7,
            "l_partkey": SF1_PART, "l_suppkey": SF1_SUPPLIER,
            "l_quantity": 50, "l_extendedprice": 1_000_000, "l_linestatus": 2,
        }, group_distinct={
            frozenset({"l_partkey", "l_suppkey"}): SF1_PARTSUPP,
        }),
        clustering_order=SortOrder(["l_orderkey", "l_linenumber"]),
        primary_key=["l_orderkey", "l_linenumber"])
    catalog.create_table(
        "supplier", SUPPLIER_SCHEMA,
        stats=TableStats(SF1_SUPPLIER, {"s_suppkey": SF1_SUPPLIER}),
        clustering_order=SortOrder(["s_suppkey"]), primary_key=["s_suppkey"])
    catalog.create_table(
        "part", PART_SCHEMA,
        stats=TableStats(SF1_PART, {"p_partkey": SF1_PART}),
        clustering_order=SortOrder(["p_partkey"]), primary_key=["p_partkey"])
    return catalog


def add_query1_indexes(catalog: Catalog) -> None:
    """Experiment A1: secondary index on l_suppkey including l_partkey
    (covers Query 1)."""
    catalog.create_index("li_suppkey_cov", "lineitem",
                         SortOrder(["l_suppkey"]), included=["l_partkey"])


def add_query2_indexes(catalog: Catalog) -> None:
    """Experiment A4: lineitem(l_suppkey) and partsupp(ps_suppkey)
    covering indexes supplying the (suppkey, partkey) order partially."""
    catalog.create_index(
        "li_suppkey_q2", "lineitem", SortOrder(["l_suppkey"]),
        included=["l_partkey", "l_quantity"])
    catalog.create_index(
        "ps_suppkey_q2", "partsupp", SortOrder(["ps_suppkey"]),
        included=["ps_partkey", "ps_availqty"])


def add_query3_indexes(catalog: Catalog) -> None:
    """Experiment B1: the two covering secondary indexes of Query 3."""
    catalog.create_index(
        "ps_suppkey_cov", "partsupp", SortOrder(["ps_suppkey"]),
        included=["ps_partkey", "ps_availqty"])
    catalog.create_index(
        "li_suppkey_cov3", "lineitem", SortOrder(["l_suppkey"]),
        included=["l_partkey", "l_quantity", "l_linestatus"])
