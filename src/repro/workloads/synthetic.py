"""Synthetic tables with controlled partial-sort-segment sizes.

Experiments A2/A3 populate tables ``R0..R7`` of 10M 200-byte rows where
``R_i`` has ``10^i`` rows per ``c1`` value — so the *partial sort
segment* of an ORDER BY ``(c1, c2)`` over input clustered on ``c1``
sweeps from 200 B to 2 GB.  We reproduce the construction at a
configurable scale (Python cannot hold 80M wide tuples), keeping the
crucial property: the sweep crosses the sort-memory boundary.

Experiment B2's ``R1, R2, R3`` (identical 100K-row tables, no indexes)
for the double full-outer-join Query 4 are also built here.
"""

from __future__ import annotations

import random
from typing import Optional

from ..core.sort_order import SortOrder
from ..storage import Catalog, Schema, SystemParameters, TableStats

SEGMENT_SCHEMA = Schema.of(
    ("c1", "int", 8),
    ("c2", "int", 8),
    ("c3", "str", 184),   # pads the row to the paper's 200 bytes
)

R_SCHEMA = Schema.of(
    ("c1", "int", 8), ("c2", "int", 8), ("c3", "int", 8),
    ("c4", "int", 8), ("c5", "int", 8),
)


def segmented_table_rows(num_rows: int, rows_per_segment: int,
                         seed: int = 11) -> list[tuple]:
    """Rows clustered on ``c1`` with exactly *rows_per_segment* rows per
    ``c1`` value; ``c2`` random (the attribute left to sort)."""
    rng = random.Random(seed)
    rows = []
    for i in range(num_rows):
        c1 = i // rows_per_segment
        rows.append((c1, rng.randrange(1_000_000), "p"))
    return rows


def segmented_catalog(num_rows: int, rows_per_segment: int, seed: int = 11,
                      params: Optional[SystemParameters] = None,
                      table_name: str = "r") -> Catalog:
    """Catalog with one segment-controlled table clustered on ``c1``."""
    catalog = Catalog(params or SystemParameters())
    rows = segmented_table_rows(num_rows, rows_per_segment, seed)
    catalog.create_table(table_name, SEGMENT_SCHEMA, rows=rows,
                         clustering_order=SortOrder(["c1"]))
    return catalog


def identical_r_tables(num_rows: int = 10_000, seed: int = 23,
                       params: Optional[SystemParameters] = None,
                       num_tables: int = 3) -> Catalog:
    """Experiment B2: identical R1..Rn, five int columns, no indexes.

    All tables share the same value distribution (paper: "the tables R1,
    R2 and R3 were identical"), drawn so the three-attribute outer joins
    produce manageable match rates.
    """
    catalog = Catalog(params or SystemParameters())
    domain = max(2, int(num_rows ** (1 / 3)))
    for t in range(1, num_tables + 1):
        rng = random.Random(seed)  # same seed → identical contents
        rows = [tuple(rng.randrange(domain) for _ in range(5))
                for _ in range(num_rows)]
        schema = R_SCHEMA.rename({c: f"r{t}_{c}" for c in R_SCHEMA.names})
        catalog.create_table(f"r{t}", schema, rows=rows)
    return catalog


def r_tables_stats_catalog(params: Optional[SystemParameters] = None,
                           num_rows: int = 100_000) -> Catalog:
    """Stats-only R1..R3 at the paper's 100K rows for plan-shape tests."""
    catalog = Catalog(params or SystemParameters())
    domain = max(2, int(num_rows ** (1 / 3)))
    for t in (1, 2, 3):
        schema = R_SCHEMA.rename({c: f"r{t}_{c}" for c in R_SCHEMA.names})
        catalog.create_table(
            f"r{t}", schema,
            stats=TableStats(num_rows,
                             {f"r{t}_{c}": domain for c in R_SCHEMA.names}))
    return catalog


#: Table sizes of the many-join workload: four "fact-sized" relations
#: ``l0..l3`` and four much smaller ``r0..r3``.
MANY_JOIN_SIZES = {"l0": 4_000, "l1": 2_600, "l2": 1_700, "l3": 1_100,
                   "r0": 260, "r1": 150, "r2": 80, "r3": 40}


def many_join_catalog(seed: int = 3, cluster: bool = True,
                      params: Optional[SystemParameters] = None) -> Catalog:
    """Eight-table many-join workload for the join-ordering benchmark.

    Every table has six int columns ``{name}_a .. {name}_e, {name}_v``
    drawn from a small domain (10 values), so all joins are
    many-to-many; each table is clustered on its ``_a`` column when
    *cluster* is set.  Deterministic for a given *seed*, so plan shapes
    and search-effort counters gate exactly in regression tests.
    """
    rng = random.Random(seed)
    catalog = Catalog(params or SystemParameters())
    for name, num_rows in MANY_JOIN_SIZES.items():
        schema = Schema.of(*[(f"{name}_{c}", "int", 8) for c in "abcdev"])
        rows = [tuple(rng.randrange(10) for _ in range(6))
                for _ in range(num_rows)]
        catalog.create_table(
            name, schema, rows=rows,
            clustering_order=(SortOrder([f"{name}_a"]) if cluster
                              else SortOrder(())))
    return catalog


def many_join_query():
    """Seven inner joins written in a deliberately adversarial shape.

    Two size-descending chains (``l0 ⋈ l1 ⋈ l2 ⋈ l3`` and
    ``r0 ⋈ r1 ⋈ r2 ⋈ r3``, single-attribute predicates) bridged by one
    five-pair join whose pairs each connect a *different* ``l``/``r``
    leaf.  As written, that top join carries a five-attribute sort goal
    (120 interesting-order permutations under the exhaustive PYRO-E
    strategy); a size-aware left-deep reordering interleaves the small
    tables early and applies the five bridge predicates one or two at a
    time, so no join ever sorts on more than two attributes.  This is
    the workload where join-order enumeration pays: both the plan cost
    and the number of optimizer goals drop when the region is reordered.
    """
    from ..logical import Query
    left = (Query.table("l0")
            .join("l1", on=[("l0_a", "l1_a")])
            .join("l2", on=[("l1_b", "l2_a")])
            .join("l3", on=[("l2_b", "l3_a")]))
    right = (Query.table("r0")
             .join("r1", on=[("r0_a", "r1_a")])
             .join("r2", on=[("r1_b", "r2_a")])
             .join("r3", on=[("r2_b", "r3_a")]))
    bridge = [("l0_c", "r0_b"), ("l1_c", "r1_c"), ("l2_c", "r2_c"),
              ("l3_b", "r3_b"), ("l0_d", "r1_d")]
    return left.join(right, on=bridge).order_by("l0_v")


def query4(catalog_prefixes: tuple[str, str, str] = ("r1", "r2", "r3")):
    """The paper's Query 4: two chained FULL OUTER joins with the
    attribute pairs {c4, c5} common to both join conditions.

    ``R1 FOJ R2 ON (c5, c4, c3)`` then ``FOJ R3 ON (c1, c4, c5)`` —
    written with R1's columns on the left of each pair.
    """
    from ..logical import Query
    a, b, c = catalog_prefixes
    return (Query.table(a)
            .full_outer_join(b, on=[(f"{a}_c5", f"{b}_c5"),
                                    (f"{a}_c4", f"{b}_c4"),
                                    (f"{a}_c3", f"{b}_c3")])
            .full_outer_join(c, on=[(f"{a}_c1", f"{c}_c1"),
                                    (f"{a}_c4", f"{c}_c4"),
                                    (f"{a}_c5", f"{c}_c5")]))
